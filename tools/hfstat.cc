// hfstat: offline analyzer for the observability artifacts this repo's
// binaries write (docs/OBSERVABILITY.md) — metrics-registry JSONL dumps,
// per-iteration telemetry JSONL, per-sequence rollout event logs, and
// BENCH_*.json reports.
//
// Usage:
//   hfstat [--top N] <artifact> [<artifact> ...]
//
// Each file's format is sniffed from its content, so any mix of artifacts
// can be passed in one invocation:
//   * metrics JSONL   ({"name":..,"type":..})   -> percentile tables for
//     quantile/histogram instruments, compact counter/gauge listing;
//   * telemetry JSONL ({"iteration":..})        -> per-iteration table and
//     means over the run;
//   * seq-events JSONL ({"kind":..,"seq":..})   -> TTFT / TPOT / queue /
//     stall percentile table, per-stage latency breakdown, and the top-N
//     slowest sequences with their event timelines;
//   * serving JSONL   ({"req":..,"outcome":..}) -> per-tenant SLO-attainment
//     table (requests / outcomes / goodput / TTFT & TPOT p99);
//   * BENCH_*.json    ({"bench":..,"rows":..})  -> row table.
//
// Exit status: 0 on success, 2 if any file is unreadable or malformed.

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/strings.h"
#include "src/obs/seq_events.h"

namespace hybridflow {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON reader (tools-local; src/obs/json_util.h
// deliberately validates without building a DOM). Handles exactly the
// subset the repo's emitters produce.

struct JValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JValue> items;                             // kArray
  std::vector<std::pair<std::string, JValue>> fields;    // kObject (ordered)

  const JValue* Find(const std::string& key) const {
    for (const auto& [name, value] : fields) {
      if (name == key) {
        return &value;
      }
    }
    return nullptr;
  }
  double Num(const std::string& key, double fallback = 0.0) const {
    const JValue* value = Find(key);
    return value != nullptr && value->kind == Kind::kNumber ? value->number : fallback;
  }
  std::string Str(const std::string& key) const {
    const JValue* value = Find(key);
    return value != nullptr && value->kind == Kind::kString ? value->text : std::string();
  }
};

class JParser {
 public:
  explicit JParser(const std::string& text) : text_(text) {}

  bool Parse(JValue* out) {
    SkipWs();
    if (!ParseValue(out)) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Literal(const char* word) {
    const size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) {
      return false;
    }
    pos_ += len;
    return true;
  }
  bool ParseValue(JValue* out) {
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JValue::Kind::kString;
        return ParseString(&out->text);
      case 't':
        out->kind = JValue::Kind::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->kind = JValue::Kind::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->kind = JValue::Kind::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }
  bool ParseObject(JValue* out) {
    out->kind = JValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      JValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->fields.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) {
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool ParseArray(JValue* out) {
    out->kind = JValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      JValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->items.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) {
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool ParseString(std::string* out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) {
          return false;
        }
        const char escape = text_[pos_ + 1];
        pos_ += 2;
        switch (escape) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return false;
            }
            // \u00XX only (the emitters never write astral escapes).
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            *out += static_cast<char>(std::stoi(hex, nullptr, 16));
            break;
          }
          default:
            return false;
        }
        continue;
      }
      *out += c;
      ++pos_;
    }
    return false;
  }
  bool ParseNumber(JValue* out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    out->kind = JValue::Kind::kNumber;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

std::string FormatValue(double value) {
  if (value == static_cast<int64_t>(value) && std::abs(value) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(value));
  }
  return StrFormat("%.4g", value);
}

std::string LabelSuffix(const JValue& record) {
  const JValue* labels = record.Find("labels");
  if (labels == nullptr || labels->fields.empty()) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels->fields) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += key + "=" + value.text;
  }
  return out + "}";
}

// Interpolated percentile over a metrics-dump fixed-bucket histogram row
// (same convention as Histogram::SnapshotQuantile).
double HistogramQuantile(const JValue& record, double q) {
  const JValue* buckets = record.Find("buckets");
  if (buckets == nullptr || buckets->items.empty()) {
    return 0.0;
  }
  uint64_t total = 0;
  for (const JValue& bucket : buckets->items) {
    total += static_cast<uint64_t>(bucket.Num("count"));
  }
  if (total == 0) {
    return 0.0;
  }
  uint64_t rank = static_cast<uint64_t>(
      std::max(1.0, std::ceil(std::min(1.0, std::max(0.0, q)) * static_cast<double>(total))));
  uint64_t cumulative = 0;
  double previous_edge = 0.0;
  double last_finite_edge = 0.0;
  for (const JValue& bucket : buckets->items) {
    const uint64_t count = static_cast<uint64_t>(bucket.Num("count"));
    const JValue* le = bucket.Find("le");
    const bool overflow = le == nullptr || le->kind != JValue::Kind::kNumber;
    const double edge = overflow ? last_finite_edge : le->number;
    if (!overflow) {
      last_finite_edge = edge;
    }
    if (cumulative + count >= rank) {
      if (overflow || count == 0) {
        return edge;
      }
      const double lower = cumulative == 0 && previous_edge == 0.0 && edge > 0.0
                               ? std::min(0.0, edge)
                               : previous_edge;
      const double fraction =
          static_cast<double>(rank - cumulative) / static_cast<double>(count);
      return lower + (edge - lower) * fraction;
    }
    cumulative += count;
    previous_edge = edge;
  }
  return last_finite_edge;
}

void PrintMetrics(const std::vector<JValue>& records) {
  std::cout << "\n-- distributions --\n";
  std::cout << StrFormat("%-44s | %8s | %10s | %10s | %10s | %10s\n", "metric", "count", "p50",
                         "p90", "p99", "max");
  for (const JValue& record : records) {
    const std::string type = record.Str("type");
    const std::string name = record.Str("name") + LabelSuffix(record);
    if (type == "quantile") {
      std::cout << StrFormat("%-44s | %8lld | %10s | %10s | %10s | %10s\n", name.c_str(),
                             static_cast<long long>(record.Num("count")),
                             FormatValue(record.Num("p50")).c_str(),
                             FormatValue(record.Num("p90")).c_str(),
                             FormatValue(record.Num("p99")).c_str(),
                             FormatValue(record.Num("max")).c_str());
    } else if (type == "histogram") {
      std::cout << StrFormat("%-44s | %8lld | %10s | %10s | %10s | %10s\n", name.c_str(),
                             static_cast<long long>(record.Num("count")),
                             FormatValue(HistogramQuantile(record, 0.5)).c_str(),
                             FormatValue(HistogramQuantile(record, 0.9)).c_str(),
                             FormatValue(HistogramQuantile(record, 0.99)).c_str(), "-");
    }
  }
  std::cout << "\n-- counters / gauges --\n";
  for (const JValue& record : records) {
    const std::string type = record.Str("type");
    if (type == "counter" || type == "gauge") {
      std::cout << StrFormat("%-52s = %s (%s)\n",
                             (record.Str("name") + LabelSuffix(record)).c_str(),
                             FormatValue(record.Num("value")).c_str(), type.c_str());
    }
  }
}

void PrintTelemetry(const std::vector<JValue>& records) {
  // Union of numeric keys in insertion order across the run.
  std::vector<std::string> keys;
  std::set<std::string> seen;
  for (const JValue& record : records) {
    for (const auto& [key, value] : record.fields) {
      if (value.kind == JValue::Kind::kNumber && seen.insert(key).second) {
        keys.push_back(key);
      }
    }
  }
  std::cout << StrFormat("\n%zu iteration records; per-field mean / last:\n", records.size());
  for (const std::string& key : keys) {
    double sum = 0.0;
    size_t count = 0;
    double last = 0.0;
    for (const JValue& record : records) {
      const JValue* value = record.Find(key);
      if (value != nullptr && value->kind == JValue::Kind::kNumber) {
        sum += value->number;
        last = value->number;
        ++count;
      }
    }
    if (count > 0) {
      std::cout << StrFormat("  %-28s mean %-12s last %s\n", key.c_str(),
                             FormatValue(sum / static_cast<double>(count)).c_str(),
                             FormatValue(last).c_str());
    }
  }
}

void PrintDigestRow(const char* name, const LatencyDigest& digest, const char* unit) {
  std::cout << StrFormat("%-18s | %8llu | %10s | %10s | %10s | %10s | %s\n", name,
                         static_cast<unsigned long long>(digest.count),
                         FormatValue(digest.p50).c_str(), FormatValue(digest.p90).c_str(),
                         FormatValue(digest.p99).c_str(), FormatValue(digest.max).c_str(), unit);
}

bool SeqEventFromRecord(const JValue& record, SeqEvent* event) {
  SeqEventKind kind;
  if (!ParseSeqEventKind(record.Str("kind"), &kind)) {
    return false;
  }
  event->run = static_cast<int64_t>(record.Num("run"));
  event->seq = static_cast<int64_t>(record.Num("seq"));
  event->kind = kind;
  event->step = static_cast<int64_t>(record.Num("step"));
  event->tokens = static_cast<int64_t>(record.Num("tokens"));
  event->sim_seconds = record.Num("sim_s");
  event->wall_us = record.Num("wall_us");
  return true;
}

void PrintSeqEvents(const std::vector<JValue>& records, int top_n) {
  std::vector<SeqEvent> events;
  events.reserve(records.size());
  for (const JValue& record : records) {
    SeqEvent event;
    if (SeqEventFromRecord(record, &event)) {
      events.push_back(event);
    }
  }
  // Sim-plane logs carry DES timestamps; data-plane logs leave them at 0
  // and are analyzed on the wall clock.
  bool any_sim = false;
  for (const SeqEvent& event : events) {
    any_sim = any_sim || event.sim_seconds > 0.0;
  }
  const bool wall = !any_sim;
  const char* unit = wall ? "wall us" : "sim s";
  std::vector<SeqLatency> latencies = DeriveSeqLatencies(events, wall);
  const SeqLatencySummary summary = SummarizeSeqLatencies(latencies);

  std::cout << StrFormat("\n%zu events, %lld sequences (%lld finished), %lld preemptions, "
                         "%lld tokens recomputed [%s plane]\n",
                         events.size(), static_cast<long long>(summary.sequences),
                         static_cast<long long>(summary.finished),
                         static_cast<long long>(summary.preemptions),
                         static_cast<long long>(summary.recomputed_tokens),
                         wall ? "wall" : "sim");
  std::cout << StrFormat("%-18s | %8s | %10s | %10s | %10s | %10s |\n", "dimension", "count",
                         "p50", "p90", "p99", "max");
  PrintDigestRow("ttft", summary.ttft, unit);
  PrintDigestRow("tpot", summary.tpot, unit);
  PrintDigestRow("queue_delay", summary.queue_delay, unit);
  PrintDigestRow("preemption_stall", summary.preemption_stall, unit);

  // Per-stage breakdown of mean end-to-end latency: queue wait, prefill
  // (first admit -> first token, includes recompute), decode tail, and
  // preemption stall (which overlaps the decode/prefill stages but is
  // reported separately as lost time).
  double queue_sum = 0.0;
  double prefill_sum = 0.0;
  double decode_sum = 0.0;
  double stall_sum = 0.0;
  double total_sum = 0.0;
  size_t emitted = 0;
  for (const SeqLatency& latency : latencies) {
    if (latency.tokens < 1) {
      continue;
    }
    ++emitted;
    queue_sum += latency.queue_delay;
    prefill_sum += latency.ttft - latency.queue_delay;
    decode_sum += latency.total - latency.ttft;
    stall_sum += latency.preemption_stall;
    total_sum += latency.total;
  }
  if (emitted > 0) {
    const double n = static_cast<double>(emitted);
    std::cout << StrFormat("\nper-stage means (%s): queue %s + prefill %s + decode %s "
                           "= total %s (preemption stall %s of that)\n",
                           unit, FormatValue(queue_sum / n).c_str(),
                           FormatValue(prefill_sum / n).c_str(),
                           FormatValue(decode_sum / n).c_str(),
                           FormatValue(total_sum / n).c_str(),
                           FormatValue(stall_sum / n).c_str());
  }

  // Top-N slowest sequences, with their full event timelines.
  std::sort(latencies.begin(), latencies.end(),
            [](const SeqLatency& a, const SeqLatency& b) { return a.total > b.total; });
  const size_t show = std::min(latencies.size(), static_cast<size_t>(top_n));
  std::cout << StrFormat("\ntop %zu slowest sequences:\n", show);
  for (size_t i = 0; i < show; ++i) {
    const SeqLatency& latency = latencies[i];
    std::cout << StrFormat(
        "  run %lld seq %lld: total %s, ttft %s, %lld tokens, %lld preemptions%s\n",
        static_cast<long long>(latency.run), static_cast<long long>(latency.seq),
        FormatValue(latency.total).c_str(), FormatValue(latency.ttft).c_str(),
        static_cast<long long>(latency.tokens), static_cast<long long>(latency.preemptions),
        latency.finished ? "" : " [unfinished]");
    // Compress decode-step runs so long timelines stay readable; report
    // timestamps relative to the sequence's first event.
    int64_t decode_run = 0;
    double base = 0.0;
    bool have_base = false;
    for (const SeqEvent& event : events) {
      if (event.run != latency.run || event.seq != latency.seq) {
        continue;
      }
      const double absolute = wall ? event.wall_us : event.sim_seconds;
      if (!have_base) {
        base = absolute;
        have_base = true;
      }
      const double t = absolute - base;
      if (event.kind == SeqEventKind::kDecodeStep) {
        ++decode_run;
        continue;
      }
      if (decode_run > 0) {
        std::cout << StrFormat("    ... %lld decode steps ...\n",
                               static_cast<long long>(decode_run));
        decode_run = 0;
      }
      std::cout << StrFormat("    %12s  step %-5lld %-13s tokens=%lld\n",
                             FormatValue(t).c_str(), static_cast<long long>(event.step),
                             SeqEventKindName(event.kind),
                             static_cast<long long>(event.tokens));
    }
    if (decode_run > 0) {
      std::cout << StrFormat("    ... %lld decode steps ...\n",
                             static_cast<long long>(decode_run));
    }
  }
}

void PrintServingRequests(const std::vector<JValue>& records) {
  // Per-request serving JSONL (src/serving/request.h): fold into the same
  // per-tenant SLO-attainment table BuildServingReport computes, so the
  // offline view of an artifact matches the live report.
  struct TenantRow {
    int64_t requests = 0;
    int64_t finished = 0;
    int64_t cancelled = 0;
    int64_t expired = 0;
    int64_t slo_attained = 0;
    int64_t goodput_tokens = 0;
    std::vector<double> ttft;
    std::vector<double> tpot;
  };
  std::map<int64_t, TenantRow> tenants;
  for (const JValue& record : records) {
    TenantRow& row = tenants[static_cast<int64_t>(record.Num("tenant"))];
    ++row.requests;
    const std::string outcome = record.Str("outcome");
    const int64_t tokens = static_cast<int64_t>(record.Num("tokens"));
    if (outcome == "finished") {
      ++row.finished;
    } else if (outcome == "cancelled") {
      ++row.cancelled;
    } else if (outcome == "expired") {
      ++row.expired;
    }
    const JValue* slo_ok = record.Find("slo_ok");
    if (slo_ok != nullptr && slo_ok->kind == JValue::Kind::kBool && slo_ok->boolean) {
      ++row.slo_attained;
      row.goodput_tokens += tokens;
    }
    if (tokens >= 1) {
      row.ttft.push_back(record.Num("ttft"));
    }
    if (tokens >= 2) {
      row.tpot.push_back(record.Num("tpot"));
    }
  }
  std::cout << StrFormat("\n%zu serving requests across %zu tenants:\n", records.size(),
                         tenants.size());
  std::cout << StrFormat("%-7s | %5s | %5s | %5s | %5s | %8s | %8s | %9s | %10s | %10s |\n",
                         "tenant", "reqs", "fin", "canc", "exp", "slo_ok", "slo_rate",
                         "good_tok", "ttft_p99_s", "tpot_p99_s");
  for (auto& [tenant, row] : tenants) {
    const LatencyDigest ttft = DigestValues(std::move(row.ttft));
    const LatencyDigest tpot = DigestValues(std::move(row.tpot));
    const double rate =
        row.requests > 0
            ? static_cast<double>(row.slo_attained) / static_cast<double>(row.requests)
            : 0.0;
    std::cout << StrFormat(
        "%-7lld | %5lld | %5lld | %5lld | %5lld | %8lld | %8s | %9lld | %10s | %10s |\n",
        static_cast<long long>(tenant), static_cast<long long>(row.requests),
        static_cast<long long>(row.finished), static_cast<long long>(row.cancelled),
        static_cast<long long>(row.expired), static_cast<long long>(row.slo_attained),
        FormatValue(rate).c_str(), static_cast<long long>(row.goodput_tokens),
        FormatValue(ttft.p99).c_str(), FormatValue(tpot.p99).c_str());
  }
}

void PrintBench(const JValue& report) {
  const JValue* rows = report.Find("rows");
  std::cout << StrFormat("\nbench \"%s\": %zu rows\n", report.Str("bench").c_str(),
                         rows != nullptr ? rows->items.size() : 0);
  if (rows == nullptr) {
    return;
  }
  for (const JValue& row : rows->items) {
    std::string line;
    for (const auto& [key, value] : row.fields) {
      if (!line.empty()) {
        line += "  ";
      }
      line += key + "=";
      line += value.kind == JValue::Kind::kNumber ? FormatValue(value.number) : value.text;
    }
    std::cout << "  " << line << "\n";
  }
}

int AnalyzeFile(const std::string& path, int top_n) {
  std::ifstream file(path);
  if (!file) {
    std::cerr << "hfstat: cannot open " << path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string content = buffer.str();

  std::cout << "==== " << path << " ====\n";

  // Whole-file JSON document (BENCH_*.json, Chrome traces)?
  {
    JValue document;
    JParser parser(content);
    if (parser.Parse(&document) && document.kind == JValue::Kind::kObject) {
      if (document.Find("bench") != nullptr) {
        PrintBench(document);
        return 0;
      }
      if (document.Find("traceEvents") != nullptr) {
        const JValue* trace_events = document.Find("traceEvents");
        std::cout << StrFormat("\nChrome trace with %zu events (open in chrome://tracing); "
                               "not analyzed further\n",
                               trace_events->items.size());
        return 0;
      }
    }
  }

  // JSONL: parse every non-empty line.
  std::vector<JValue> records;
  std::istringstream lines(content);
  std::string line;
  size_t line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    JValue record;
    JParser parser(line);
    if (!parser.Parse(&record) || record.kind != JValue::Kind::kObject) {
      std::cerr << "hfstat: " << path << ":" << line_number << ": malformed JSON line\n";
      return 2;
    }
    records.push_back(std::move(record));
  }
  if (records.empty()) {
    std::cout << "(empty)\n";
    return 0;
  }

  const JValue& head = records.front();
  if (head.Find("kind") != nullptr && head.Find("seq") != nullptr) {
    PrintSeqEvents(records, top_n);
  } else if (head.Find("req") != nullptr && head.Find("outcome") != nullptr) {
    PrintServingRequests(records);
  } else if (head.Find("name") != nullptr && head.Find("type") != nullptr) {
    PrintMetrics(records);
  } else if (head.Find("iteration") != nullptr) {
    PrintTelemetry(records);
  } else {
    std::cerr << "hfstat: " << path << ": unrecognized JSONL schema\n";
    return 2;
  }
  return 0;
}

int Main(int argc, char** argv) {
  int top_n = 5;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--top" && i + 1 < argc) {
      top_n = std::max(0, std::atoi(argv[++i]));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: hfstat [--top N] <artifact.jsonl|BENCH_*.json> ...\n";
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: hfstat [--top N] <artifact.jsonl|BENCH_*.json> ...\n";
    return 2;
  }
  int status = 0;
  for (const std::string& path : paths) {
    status = std::max(status, AnalyzeFile(path, top_n));
  }
  return status;
}

}  // namespace
}  // namespace hybridflow

int main(int argc, char** argv) { return hybridflow::Main(argc, argv); }
