// hybridflow_run: config-driven experiment runner.
//
// Reads a `key = value` config (see configs/*.cfg), builds the requested
// RLHF system on the simulated cluster, runs it, and reports throughput,
// stage breakdowns, learning metrics (when the real data plane is on), and
// optionally a Chrome trace of the execution pattern.
//
// Usage: hybridflow_run <config-file> [key=value overrides...]
//
// Recognized keys (defaults in parentheses):
//   system            hybridflow | deepspeed-chat | openrlhf | nemo (hybridflow)
//   algorithm         ppo | remax | safe-rlhf | grpo (ppo)
//   cluster.gpus      (16)       cluster.gpus_per_node (8)
//   model.actor       7B|13B|34B|70B (7B)     model.critic (same as actor)
//   placement         auto | colocate | standalone | split (auto)
//   workload.global_batch (1024) workload.prompt_len (1024)
//   workload.response_len (1024) workload.updates (8)
//   run.warmup (1)    run.iterations (3)
//   run.real_compute  (false)    run.real_batch (32)    run.seed (1)
//   run.arch          mlp | transformer (mlp) — toy policy architecture
//   run.trace_path    write a Chrome trace JSON of the last iteration
//   run.checkpoint_path  save a final checkpoint (real compute only)
//   rollout.mode      static | continuous (static); rollout.policy,
//   rollout.block_tokens, rollout.num_blocks, rollout.reserve_tokens,
//   rollout.max_running, rollout.prefill_chunk_tokens (0 = off)
//   async_pipeline    (false) one-step-off PPO; requires rollout.mode=continuous
//   async_staleness   (1) staleness-queue depth; 0 degenerates to sync order
//   tensor.threads    (0 = auto) data-plane kernel workers; any value is
//                     bitwise-equivalent (docs/KERNELS.md)
//
// Serving mode (docs/SERVING.md) — selected when `serving.trace` is set;
// replays a synthetic multi-tenant arrival trace through SimulateServing
// instead of running RLHF iterations:
//   serving.trace     poisson | bursty | diurnal — arrival-trace shape
//   serving.rate (6)  serving.duration (30)  serving.max_requests (256)
//   serving.seed (7)  serving.tp (2)         serving.kv_tokens (4096)
//   serving.admission queue | priority | deadline | weighted_fair (queue)
//   serving.expire_overdue (true)  serving.fair_quantum_tokens (256)
//   serving.interactive_share (0.3)  serving.interactive_weight (4.0)
//   serving.ttft_slo (2.0)  serving.tpot_slo (0.5)  — interactive tenant 0
//   serving.requests_path  write the per-request JSONL artifact (hfstat)

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/baselines/system_builder.h"
#include "src/ckpt/checkpoint.h"
#include "src/common/config.h"
#include "src/common/strings.h"
#include "src/data/arrival_trace.h"
#include "src/serving/sim.h"
#include "src/sim/topology.h"
#include "src/sim/trace_export.h"

namespace hybridflow {
namespace {

RlhfSystem ParseSystem(const std::string& name) {
  if (name == "hybridflow") {
    return RlhfSystem::kHybridFlow;
  }
  if (name == "deepspeed-chat") {
    return RlhfSystem::kDeepSpeedChat;
  }
  if (name == "openrlhf") {
    return RlhfSystem::kOpenRlhf;
  }
  if (name == "nemo") {
    return RlhfSystem::kNemoAligner;
  }
  std::cerr << "unknown system: " << name << "\n";
  std::exit(2);
}

RlhfAlgorithm ParseAlgorithm(const std::string& name) {
  if (name == "ppo") {
    return RlhfAlgorithm::kPpo;
  }
  if (name == "remax") {
    return RlhfAlgorithm::kRemax;
  }
  if (name == "safe-rlhf") {
    return RlhfAlgorithm::kSafeRlhf;
  }
  if (name == "grpo") {
    return RlhfAlgorithm::kGrpo;
  }
  std::cerr << "unknown algorithm: " << name << "\n";
  std::exit(2);
}

PlacementKind ParsePlacement(const std::string& name) {
  if (name == "auto") {
    return PlacementKind::kAuto;
  }
  if (name == "colocate") {
    return PlacementKind::kColocate;
  }
  if (name == "standalone") {
    return PlacementKind::kStandalone;
  }
  if (name == "split") {
    return PlacementKind::kSplit;
  }
  std::cerr << "unknown placement: " << name << "\n";
  std::exit(2);
}

AdmissionPolicy ParseAdmission(const std::string& name) {
  if (name == "queue") {
    return AdmissionPolicy::kQueueOrder;
  }
  if (name == "priority") {
    return AdmissionPolicy::kPriority;
  }
  if (name == "deadline") {
    return AdmissionPolicy::kDeadline;
  }
  if (name == "weighted_fair") {
    return AdmissionPolicy::kWeightedFair;
  }
  std::cerr << "unknown serving.admission: " << name << "\n";
  std::exit(2);
}

int RunServing(const ConfigMap& config) {
  TraceShape shape;
  const std::string shape_name = config.GetString("serving.trace");
  if (!ParseTraceShape(shape_name, &shape)) {
    std::cerr << "unknown serving.trace: " << shape_name << "\n";
    std::exit(2);
  }
  ArrivalTraceConfig trace_config;
  trace_config.shape = shape;
  trace_config.rate = config.GetDouble("serving.rate", 6.0);
  trace_config.duration = config.GetDouble("serving.duration", 30.0);
  trace_config.max_requests = config.GetInt("serving.max_requests", 256);
  // Two-tenant mix: tenant 0 is the interactive, SLO-carrying class;
  // tenant 1 is best-effort batch with longer prompts and responses.
  TenantSpec interactive;
  interactive.tenant = 0;
  interactive.share = config.GetDouble("serving.interactive_share", 0.3);
  interactive.priority = 10;
  interactive.ttft_slo = config.GetDouble("serving.ttft_slo", 2.0);
  interactive.tpot_slo = config.GetDouble("serving.tpot_slo", 0.5);
  interactive.prompt_min = 64;
  interactive.prompt_max = 256;
  interactive.new_tokens_min = 16;
  interactive.new_tokens_max = 64;
  TenantSpec batch;
  batch.tenant = 1;
  batch.share = 1.0 - interactive.share;
  batch.prompt_min = 256;
  batch.prompt_max = 1024;
  batch.new_tokens_min = 64;
  batch.new_tokens_max = 256;
  trace_config.tenants = {interactive, batch};
  const uint64_t seed = static_cast<uint64_t>(config.GetInt("serving.seed", 7));
  const std::vector<ArrivalRecord> trace = GenerateArrivalTrace(trace_config, seed);

  ServingPolicyConfig policy;
  policy.admission = ParseAdmission(config.GetString("serving.admission", "queue"));
  policy.expire_overdue = config.GetBool("serving.expire_overdue", true);
  policy.fair_quantum_tokens = config.GetInt("serving.fair_quantum_tokens", 256);
  policy.tenant_weights = {{0, config.GetDouble("serving.interactive_weight", 4.0)}, {1, 1.0}};

  const ModelSpec model = ModelSpec::ByName(config.GetString("model.actor", "7B"));
  const int num_gpus = static_cast<int>(config.GetInt("cluster.gpus", 16));
  const PerfModel perf(model, ClusterSpec::WithGpus(num_gpus));
  const int tp = static_cast<int>(config.GetInt("serving.tp", 2));
  const GenParallelConfig gen{1, tp};
  std::vector<DeviceId> devices;
  for (int d = 0; d < tp; ++d) {
    devices.push_back(d);
  }
  const double kv_budget = static_cast<double>(config.GetInt("serving.kv_tokens", 4096)) *
                           perf.KvBytesPerTokenPerGpu(gen);

  std::cout << StrFormat("serving: %zu requests, trace=%s rate=%.1f/s admission=%s model=%s\n",
                         trace.size(), TraceShapeName(shape), trace_config.rate,
                         config.GetString("serving.admission", "queue").c_str(),
                         model.name.c_str());
  const ServingSimResult result =
      SimulateServing(perf, gen, devices, trace, kv_budget, policy);
  std::cout << StrFormat(
      "RESULT: %lld finished, %lld cancelled, %lld expired in %s; "
      "SLO attainment %lld/%lld, goodput %.0f tok/s\n",
      static_cast<long long>(result.report.finished),
      static_cast<long long>(result.report.cancelled),
      static_cast<long long>(result.report.expired), HumanSeconds(result.sim_seconds).c_str(),
      static_cast<long long>(result.report.slo_attained),
      static_cast<long long>(result.report.requests), result.report.goodput);
  for (const TenantServingStats& tenant : result.report.tenants) {
    std::cout << StrFormat(
        "  tenant %lld: %lld reqs, slo %lld, ttft p50 %s p99 %s, tpot p99 %s, "
        "goodput %.0f tok/s\n",
        static_cast<long long>(tenant.tenant), static_cast<long long>(tenant.requests),
        static_cast<long long>(tenant.slo_attained), HumanSeconds(tenant.ttft.p50).c_str(),
        HumanSeconds(tenant.ttft.p99).c_str(), HumanSeconds(tenant.tpot.p99).c_str(),
        tenant.goodput);
  }
  if (result.kv_leaked_blocks != 0) {
    std::cerr << "KV LEAK: " << result.kv_leaked_blocks << " blocks still resident\n";
    return 1;
  }
  const std::string requests_path = config.GetString("serving.requests_path");
  if (!requests_path.empty()) {
    if (WriteRequestRecordsJsonl(requests_path, result.records)) {
      std::cout << "per-request JSONL written to " << requests_path << " (analyze with hfstat)\n";
    } else {
      std::cerr << "failed to write " << requests_path << "\n";
      return 1;
    }
  }
  return 0;
}

int Run(const ConfigMap& config) {
  if (config.Has("serving.trace")) {
    return RunServing(config);
  }
  SystemBuildConfig build;
  build.system = ParseSystem(config.GetString("system", "hybridflow"));
  build.algorithm = ParseAlgorithm(config.GetString("algorithm", "ppo"));
  build.num_gpus = static_cast<int>(config.GetInt("cluster.gpus", 16));
  build.gpus_per_node = static_cast<int>(config.GetInt("cluster.gpus_per_node", 8));
  const std::string actor_name = config.GetString("model.actor", "7B");
  build.actor_model = ModelSpec::ByName(actor_name);
  build.critic_model = ModelSpec::ByName(config.GetString("model.critic", actor_name));
  build.placement = ParsePlacement(config.GetString("placement", "auto"));
  build.workload.global_batch = config.GetInt("workload.global_batch", 1024);
  build.workload.prompt_len = config.GetInt("workload.prompt_len", 1024);
  build.workload.response_len = config.GetInt("workload.response_len", 1024);
  build.workload.updates_per_iteration =
      static_cast<int>(config.GetInt("workload.updates", 8));
  build.real_compute = config.GetBool("run.real_compute", false);
  if (config.GetString("run.arch", "mlp") == "transformer") {
    build.real_arch = PolicyArch::kTransformer;
  }
  build.real_batch = config.GetInt("run.real_batch", 32);
  build.seed = static_cast<uint64_t>(config.GetInt("run.seed", 1));
  const std::string rollout_mode = config.GetString("rollout.mode", "static");
  if (rollout_mode == "continuous") {
    build.rollout.mode = RolloutMode::kContinuous;
  } else if (rollout_mode != "static") {
    std::cerr << "unknown rollout.mode: " << rollout_mode << "\n";
    std::exit(2);
  }
  const std::string rollout_policy = config.GetString("rollout.policy", "fcfs");
  if (rollout_policy == "longest_prefix") {
    build.rollout.policy = RolloutPolicy::kLongestPrefixFirst;
  } else if (rollout_policy != "fcfs") {
    std::cerr << "unknown rollout.policy: " << rollout_policy << "\n";
    std::exit(2);
  }
  build.rollout.block_tokens = config.GetInt("rollout.block_tokens", build.rollout.block_tokens);
  build.rollout.num_blocks = config.GetInt("rollout.num_blocks", build.rollout.num_blocks);
  build.rollout.reserve_tokens =
      config.GetInt("rollout.reserve_tokens", build.rollout.reserve_tokens);
  build.rollout.max_running = config.GetInt("rollout.max_running", build.rollout.max_running);
  build.rollout.prefill_chunk_tokens =
      config.GetInt("rollout.prefill_chunk_tokens", build.rollout.prefill_chunk_tokens);
  build.rollout.enable_prefix_cache =
      config.GetBool("kvcache.prefix_cache", build.rollout.enable_prefix_cache);
  build.rollout.reserve_full_length =
      config.GetBool("rollout.reserve_full_length", build.rollout.reserve_full_length);
  build.async_pipeline = config.GetBool("async_pipeline", false);
  build.async_staleness = config.GetInt("async_staleness", build.async_staleness);
  build.tensor_threads = static_cast<int>(config.GetInt("tensor.threads", 0));

  const std::string config_error = ValidateSystemConfig(build);
  if (!config_error.empty()) {
    std::cerr << "config error: " << config_error << "\n";
    std::exit(2);
  }

  std::cout << "system=" << RlhfSystemName(build.system)
            << " algorithm=" << RlhfAlgorithmName(build.algorithm) << " gpus=" << build.num_gpus
            << " actor=" << build.actor_model.name << " critic=" << build.critic_model.name
            << "\n";

  RlhfSystemInstance instance = BuildSystem(build);
  if (!instance.feasible) {
    std::cout << "RESULT: infeasible (models do not fit this cluster)\n";
    return 1;
  }
  if (build.system == RlhfSystem::kHybridFlow) {
    std::cout << "mapping: " << instance.mapping.sets.size() << " colocated set(s), estimated "
              << HumanSeconds(instance.mapping.est_iteration_seconds) << "/iter\n";
    for (const auto& [name, model] : instance.mapping.models) {
      std::cout << "  " << name << ": p-t-d " << model.train.ToString()
                << (model.backend == WorkerBackend::k3dParallel ? " (3D)" : " (ZeRO)");
      if (name == "actor") {
        std::cout << ", generation " << model.gen.ToString();
      }
      std::cout << "\n";
    }
  }

  const int warmup = static_cast<int>(config.GetInt("run.warmup", 1));
  const int iterations = static_cast<int>(config.GetInt("run.iterations", 3));
  for (int i = 0; i < warmup; ++i) {
    instance.RunIteration();
  }
  instance.controller->cluster().ClearTrace();
  IterationMetrics last;
  double throughput_sum = 0.0;
  for (int i = 0; i < iterations; ++i) {
    last = instance.RunIteration();
    throughput_sum += last.throughput_tokens_per_sec;
    std::cout << StrFormat("iter %2d: %s, %.0f tok/s", i,
                           HumanSeconds(last.iteration_seconds).c_str(),
                           last.throughput_tokens_per_sec);
    if (build.real_compute) {
      std::cout << StrFormat(", reward %.3f, toxicity %.3f", last.mean_reward,
                             last.toxicity_rate);
    }
    if (build.async_pipeline) {
      std::cout << StrFormat(", overlap %.0f%%, staleness %lld", 100.0 * last.overlap_fraction,
                             static_cast<long long>(last.async_staleness));
    }
    std::cout << "\n";
  }
  // Async pipeline: flush the staleness queue so every generated rollout is
  // trained on (the final iterations run without issuing new generations).
  while (instance.program->pending_experience() > 0) {
    const IterationMetrics drained = instance.program->DrainIteration();
    std::cout << StrFormat("drain:   %s, staleness %lld, %lld batch(es) left\n",
                           HumanSeconds(drained.iteration_seconds).c_str(),
                           static_cast<long long>(drained.async_staleness),
                           static_cast<long long>(drained.async_queue_depth));
  }
  std::cout << StrFormat("RESULT: mean throughput %.0f tokens/sec, utilization %.0f%%\n",
                         throughput_sum / iterations,
                         100.0 * MeanUtilization(instance.controller->cluster()));
  std::cout << "busy time by stage:";
  for (const auto& [category, seconds] : last.busy_by_category) {
    std::cout << " " << category << "=" << HumanSeconds(seconds);
  }
  std::cout << " (GPU-seconds, last iteration)\n";

  if (build.rollout.mode == RolloutMode::kContinuous) {
    const RolloutStats& sim = instance.actor->last_rollout_sim_stats();
    std::cout << StrFormat(
        "rollout (sim plane): %lld steps, %lld admissions, %lld preemptions, peak batch %lld, "
        "KV peak %.0f%%\n",
        static_cast<long long>(sim.steps), static_cast<long long>(sim.admissions),
        static_cast<long long>(sim.preemptions), static_cast<long long>(sim.max_running_batch),
        100.0 * sim.kv_peak_utilization);
    if (build.rollout.prefill_chunk_tokens > 0) {
      std::cout << StrFormat(
          "chunked prefill: %lld partial chunk(s), max %lld prefill tokens/step (budget %lld)\n",
          static_cast<long long>(sim.prefill_chunks),
          static_cast<long long>(sim.max_prefill_tokens_step),
          static_cast<long long>(build.rollout.prefill_chunk_tokens));
    }
  }

  const std::string trace_path = config.GetString("run.trace_path");
  if (!trace_path.empty()) {
    if (WriteChromeTrace(instance.controller->cluster(), trace_path)) {
      std::cout << "trace written to " << trace_path << " (open in chrome://tracing)\n";
    } else {
      std::cerr << "failed to write trace to " << trace_path << "\n";
    }
  }
  const std::string checkpoint_path = config.GetString("run.checkpoint_path");
  if (!checkpoint_path.empty() && build.real_compute) {
    CheckpointManager manager;
    std::map<std::string, const PolicyNet*> nets;
    nets["actor"] = &instance.actor->net();
    if (instance.critic != nullptr) {
      nets["critic"] = &instance.critic->net();
    }
    manager.Capture(warmup + iterations, 0, nets);
    if (manager.SaveToFile(checkpoint_path)) {
      std::cout << "checkpoint written to " << checkpoint_path << "\n";
    }
  }
  return 0;
}

}  // namespace
}  // namespace hybridflow

int main(int argc, char** argv) {
  using namespace hybridflow;
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " <config-file> [key=value ...]\n";
    return 2;
  }
  ConfigMap config;
  std::string error;
  if (!config.ParseFile(argv[1], &error)) {
    std::cerr << "config error: " << error << "\n";
    return 2;
  }
  for (int i = 2; i < argc; ++i) {
    if (!config.ParseString(argv[i], &error)) {
      std::cerr << "override error in '" << argv[i] << "': " << error << "\n";
      return 2;
    }
  }
  return Run(config);
}
