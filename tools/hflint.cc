// hflint: the in-repo invariant linter, run as a ctest over the full tree.
//
// Walks src/ tests/ bench/ tools/ under the repo root (argv[1], default ".")
// and enforces the conventions documented in docs/STATIC_ANALYSIS.md:
//
//   include-guard        #ifndef/#define guard spelled from the file path
//                        (src/common/check.h -> SRC_COMMON_CHECK_H_)
//   no-include-cc        never #include an implementation file
//   include-path         quoted includes are repo-root-relative, live under
//                        src/ tests/ bench/ tools/, and resolve to a file
//   banned-rand          rand()/srand() are banned; use hybridflow::Rng so
//                        runs stay reproducible from a seed
//   naked-new            no naked new/delete outside src/tensor/ (the one
//                        place that manages raw buffers); use value members
//                        or std::unique_ptr
//   pool-task-capture    lambdas handed to ThreadPool Submit/ParallelFor
//                        must not capture `this` or default-capture [=]:
//                        tasks may outlive `this` (and a shared_ptr copy of
//                        it keeps worker groups alive past their pools)
//   mutex-guards         every mutex member documents what it protects,
//                        via HF_GUARDED_BY on the protected members or a
//                        `// guards:` comment at the declaration
//   condvar-wait         CondVar::Wait (any member `.Wait(arg)` call) sits
//                        inside a while (predicate) loop — never if-guarded
//                        or naked. Spurious wakeups are real and the
//                        schedule fuzzer widens the stolen-wakeup window,
//                        so the predicate must be re-checked on wake
//   unreferenced-guard   (src/ only) a mutex member with zero
//                        HF_GUARDED_BY(<name>) references in its file is
//                        a comment-only guard: nothing ties it to its data
//                        for -Wthread-safety, so the contract can rot
//                        silently. Annotate the protected members instead
//   thread-construction  std::thread is constructed only in
//                        src/common/thread_pool.cc; everything else goes
//                        through ThreadPool
//   annotated-sync       src/rollout/, src/tensor/, src/nn/, src/serving/,
//                        and src/kvcache/ use the
//                        capability-annotated Mutex/MutexLock/CondVar from
//                        src/common/annotations.h, never raw std::mutex /
//                        std::lock_guard / std::condition_variable — these
//                        subsystems run under TSan and -Wthread-safety,
//                        and unannotated primitives opt out silently (the
//                        tensor/nn kernels share mutable state with the
//                        pool via atomics and chunk ownership only)
//   simd-intrinsics      x86 vector intrinsics (immintrin.h and friends,
//                        _mm*/__m* tokens) are confined to
//                        src/tensor/simd.h and src/tensor/simd.cc; every
//                        other file calls the runtime-dispatched simd::
//                        kernels so the scalar<->AVX2 bitwise contract in
//                        docs/KERNELS.md has a single enforcement point
//   raw-diagnostics      library code under src/ never writes diagnostics
//                        with std::cerr / printf / fprintf; route them
//                        through src/common/logging.h (HF_LOG) or the
//                        src/obs/ sinks so output stays structured and
//                        filterable
//   doc-drift            backtick-quoted `src/...`-style paths and
//                        `ClassName::Member` references in docs/*.md must
//                        resolve against the tree: paths (and `*` globs,
//                        and extension-less tool names) must exist, the
//                        class must be declared somewhere under the walked
//                        directories, and the member must occur in code.
//                        `--docs-selftest` exercises the rule against a
//                        synthetic tree with known-stale references.
//
// `--rules-selftest` is the same style of negative gate for the
// concurrency rules (condvar-wait, unreferenced-guard): a synthetic tree
// with known-bad waits and comment-only guards must produce exactly the
// expected findings, and the allow() hatches must suppress them.
//
// Suppress a finding on one line with: // hflint: allow(<rule>)
//
// Matching runs on comment- and string-stripped text (except the include
// rules, which read the raw line), so documentation never trips a rule.
// No external dependencies; exits non-zero when any finding is reported.

#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string file;  // Repo-root-relative path.
  int line;          // 1-based; 0 for whole-file findings.
  std::string rule;
  std::string message;
};

struct FileText {
  std::string path;                 // Repo-root-relative, '/'-separated.
  std::vector<std::string> raw;     // Original lines.
  std::vector<std::string> code;    // Comment- and string-stripped lines.
  std::vector<std::string> allows;  // Per-line "hflint: allow(...)" payloads.
};

bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_'; }

// Removes // and /* */ comments, string and char literal *contents* (the
// quotes remain so expressions keep their shape), collecting per-line
// hflint allow annotations from the comments as they are dropped.
void StripCommentsAndStrings(FileText& file) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  file.code.reserve(file.raw.size());
  file.allows.assign(file.raw.size(), "");
  for (size_t li = 0; li < file.raw.size(); ++li) {
    const std::string& in = file.raw[li];
    // Allow annotations live in comments; harvest from the raw text.
    const size_t allow_pos = in.find("hflint: allow(");
    if (allow_pos != std::string::npos) {
      const size_t open = in.find('(', allow_pos);
      const size_t close = in.find(')', open);
      if (close != std::string::npos) {
        file.allows[li] = in.substr(open + 1, close - open - 1);
      }
    }
    std::string out;
    out.reserve(in.size());
    if (state == State::kLineComment) {
      state = State::kCode;  // Line comments end with the line.
    }
    for (size_t i = 0; i < in.size(); ++i) {
      const char c = in[i];
      const char next = i + 1 < in.size() ? in[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            state = State::kLineComment;
            i = in.size();
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            ++i;
          } else if (c == '"') {
            state = State::kString;
            out.push_back(c);
          } else if (c == '\'') {
            state = State::kChar;
            out.push_back(c);
          } else {
            out.push_back(c);
          }
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            ++i;
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            state = State::kCode;
            out.push_back(c);
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            state = State::kCode;
            out.push_back(c);
          }
          break;
        case State::kLineComment:
          break;
      }
    }
    file.code.push_back(std::move(out));
  }
}

bool Allowed(const FileText& file, size_t line_index, const std::string& rule) {
  return line_index < file.allows.size() &&
         file.allows[line_index].find(rule) != std::string::npos;
}

// Finds `token` at position >= from where both neighbours are non-identifier
// characters (word-boundary search).
size_t FindToken(const std::string& line, const std::string& token, size_t from = 0) {
  size_t pos = line.find(token, from);
  while (pos != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    const size_t after = pos + token.size();
    const bool right_ok = after >= line.size() || !IsIdentChar(line[after]);
    if (left_ok && right_ok) {
      return pos;
    }
    pos = line.find(token, pos + 1);
  }
  return std::string::npos;
}

std::string ExpectedGuard(const std::string& path) {
  std::string guard;
  guard.reserve(path.size() + 1);
  for (char c : path) {
    if (c == '/' || c == '.' || c == '-') {
      guard.push_back('_');
    } else {
      guard.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
  }
  guard.push_back('_');
  return guard;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void CheckIncludeGuard(const FileText& file, std::vector<Finding>& findings) {
  if (!EndsWith(file.path, ".h")) {
    return;
  }
  const std::string expected = ExpectedGuard(file.path);
  int ifndef_line = -1;
  bool has_define = false;
  auto trimmed_tail = [](const std::string& line) {
    const size_t end = line.find_last_not_of(" \t");
    return end == std::string::npos ? std::string() : line.substr(8, end - 7);
  };
  for (size_t i = 0; i < file.raw.size(); ++i) {
    const std::string& line = file.raw[i];
    if (ifndef_line < 0 && StartsWith(line, "#ifndef ")) {
      if (trimmed_tail(line) == expected) {
        ifndef_line = static_cast<int>(i);
      } else {
        findings.push_back({file.path, static_cast<int>(i) + 1, "include-guard",
                            "guard '" + line.substr(8) + "' should be '" + expected + "'"});
        return;
      }
    } else if (ifndef_line >= 0 && StartsWith(line, "#define ")) {
      has_define = trimmed_tail(line) == expected;
      break;
    }
  }
  if (ifndef_line < 0 || !has_define) {
    findings.push_back({file.path, 0, "include-guard",
                        "missing #ifndef/#define include guard '" + expected + "'"});
  }
}

void CheckIncludes(const FileText& file, const fs::path& root,
                   std::vector<Finding>& findings) {
  for (size_t i = 0; i < file.raw.size(); ++i) {
    const std::string& line = file.raw[i];
    size_t pos = line.find_first_not_of(" \t");
    if (pos == std::string::npos || line[pos] != '#') {
      continue;
    }
    const size_t inc = line.find("include", pos);
    if (inc == std::string::npos) {
      continue;
    }
    const size_t open = line.find_first_of("\"<", inc);
    if (open == std::string::npos) {
      continue;
    }
    const char closer = line[open] == '"' ? '"' : '>';
    const size_t close = line.find(closer, open + 1);
    if (close == std::string::npos) {
      continue;
    }
    const std::string target = line.substr(open + 1, close - open - 1);
    if (EndsWith(target, ".cc") || EndsWith(target, ".cpp")) {
      if (!Allowed(file, i, "no-include-cc")) {
        findings.push_back({file.path, static_cast<int>(i) + 1, "no-include-cc",
                            "do not #include implementation file '" + target + "'"});
      }
      continue;
    }
    if (closer != '"') {
      continue;  // System includes are free-form.
    }
    const bool rooted = StartsWith(target, "src/") || StartsWith(target, "tests/") ||
                        StartsWith(target, "bench/") || StartsWith(target, "tools/");
    if (!rooted) {
      if (!Allowed(file, i, "include-path")) {
        findings.push_back({file.path, static_cast<int>(i) + 1, "include-path",
                            "quoted include '" + target +
                                "' must be repo-root-relative (src/..., bench/..., ...)"});
      }
    } else if (!fs::exists(root / target)) {
      findings.push_back({file.path, static_cast<int>(i) + 1, "include-path",
                          "include '" + target + "' does not resolve to a file"});
    }
  }
}

void CheckBannedCalls(const FileText& file, std::vector<Finding>& findings) {
  const bool tensor_file = StartsWith(file.path, "src/tensor/");
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    if (line.empty()) {
      continue;
    }
    // banned-rand: non-seeded libc randomness breaks reproducibility.
    for (const char* fn : {"rand", "srand", "drand48"}) {
      const size_t pos = FindToken(line, fn);
      if (pos != std::string::npos && pos + std::string(fn).size() < line.size() &&
          line[pos + std::string(fn).size()] == '(' && !Allowed(file, i, "banned-rand")) {
        findings.push_back({file.path, static_cast<int>(i) + 1, "banned-rand",
                            std::string(fn) + "() is banned; draw from hybridflow::Rng"});
      }
    }
    // naked-new / naked-delete outside src/tensor/.
    if (!tensor_file) {
      const size_t new_pos = FindToken(line, "new");
      if (new_pos != std::string::npos && !Allowed(file, i, "naked-new")) {
        // Only flag expression-new: `new Type...`, not `operator new` decls.
        const size_t after = line.find_first_not_of(" \t", new_pos + 3);
        const bool is_expr = after != std::string::npos &&
                             (IsIdentChar(line[after]) || line[after] == '(' ||
                              line[after] == '[') &&
                             line.find("operator") == std::string::npos;
        if (is_expr) {
          findings.push_back({file.path, static_cast<int>(i) + 1, "naked-new",
                              "naked new outside src/tensor/; use std::make_unique or a "
                              "value member"});
        }
      }
      size_t del_pos = FindToken(line, "delete");
      if (del_pos != std::string::npos && !Allowed(file, i, "naked-delete")) {
        // `= delete;` (deleted functions) and `= delete` in defaulted
        // declarations are language, not deallocation.
        size_t before = line.find_last_not_of(" \t", del_pos == 0 ? 0 : del_pos - 1);
        const bool deleted_fn = before != std::string::npos && line[before] == '=';
        if (!deleted_fn) {
          findings.push_back({file.path, static_cast<int>(i) + 1, "naked-delete",
                              "naked delete outside src/tensor/; prefer owning types"});
        }
      }
    }
    // pool-task-capture: Submit/ParallelFor lambdas must not capture `this`
    // or use [=] (same-line heuristic; multi-line captures are rare here).
    for (const char* entry : {"Submit", "ParallelFor"}) {
      const size_t call = FindToken(line, entry);
      if (call == std::string::npos) {
        continue;
      }
      const size_t paren = line.find('(', call);
      if (paren == std::string::npos || paren != call + std::string(entry).size()) {
        continue;
      }
      const size_t open = line.find('[', paren);
      if (open == std::string::npos) {
        continue;
      }
      const size_t close = line.find(']', open);
      if (close == std::string::npos) {
        continue;
      }
      const std::string capture = line.substr(open + 1, close - open - 1);
      const bool captures_this = FindToken(capture, "this") != std::string::npos ||
                                 capture.find('=') != std::string::npos;
      if (captures_this && !Allowed(file, i, "pool-task-capture")) {
        findings.push_back({file.path, static_cast<int>(i) + 1, "pool-task-capture",
                            "pool task captures `this`/[=]; capture the needed members "
                            "explicitly by reference or value"});
      }
    }
  }
}

// Parses `line` as a mutex *member* declaration (`Mutex foo_;`,
// `mutable std::mutex foo_{...};`) and returns the member name, or "" when
// the line is not one. The repo's naming convention marks members with a
// trailing underscore, which is what separates them from locals and
// parameters. When `skip_references`, reference members (`Mutex& foo_;`)
// return "" — they alias a mutex owned (and documented) elsewhere.
std::string MutexMemberName(const std::string& line, bool skip_references) {
  size_t pos = std::string::npos;
  for (const char* type : {"std::mutex", "std::recursive_mutex", "std::shared_mutex"}) {
    pos = FindToken(line, type);
    if (pos != std::string::npos) {
      pos += std::string(type).size();
      break;
    }
  }
  if (pos == std::string::npos) {
    const size_t mu = FindToken(line, "Mutex");
    if (mu != std::string::npos && (mu < 2 || line.compare(mu - 2, 2, "::") != 0)) {
      pos = mu + 5;
    }
  }
  if (pos == std::string::npos) {
    return "";
  }
  const size_t name_begin = line.find_first_not_of(" \t&*", pos);
  if (name_begin == std::string::npos || !IsIdentChar(line[name_begin])) {
    return "";
  }
  if (skip_references && line.find_first_of("&*", pos) < name_begin) {
    return "";
  }
  size_t name_end = name_begin;
  while (name_end < line.size() && IsIdentChar(line[name_end])) {
    ++name_end;
  }
  const std::string name = line.substr(name_begin, name_end - name_begin);
  if (name.empty() || name.back() != '_') {
    return "";  // Local or parameter, not a member.
  }
  const size_t rest = line.find_first_not_of(" \t", name_end);
  if (rest == std::string::npos || (line[rest] != ';' && line[rest] != '{')) {
    return "";  // Not a plain declaration (e.g. a function taking Mutex&).
  }
  return name;
}

void CheckMutexGuards(const FileText& file, std::vector<Finding>& findings) {
  // Collect the whole file once to look for HF_GUARDED_BY(<mutex>) uses.
  std::string joined;
  for (const std::string& line : file.code) {
    joined += line;
    joined += '\n';
  }
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string name = MutexMemberName(file.code[i], /*skip_references=*/false);
    if (name.empty()) {
      continue;
    }
    const bool has_comment =
        file.raw[i].find("guards:") != std::string::npos ||
        (i > 0 && file.raw[i - 1].find("guards:") != std::string::npos);
    const bool has_annotation = joined.find("HF_GUARDED_BY(" + name + ")") != std::string::npos;
    if (!has_comment && !has_annotation && !Allowed(file, i, "mutex-guards")) {
      findings.push_back({file.path, static_cast<int>(i) + 1, "mutex-guards",
                          "mutex member '" + name +
                              "' must document what it protects (HF_GUARDED_BY on the "
                              "data or a `// guards:` comment)"});
    }
  }
}

// unreferenced-guard: in library code, a `// guards:` comment alone is not
// machine-checked — if no member is HF_GUARDED_BY(<mutex>), -Wthread-safety
// verifies nothing and the documented contract can rot silently.
void CheckUnreferencedGuard(const FileText& file, std::vector<Finding>& findings) {
  if (!StartsWith(file.path, "src/")) {
    return;  // Tests/benches/tools may use ad-hoc locals and fixtures.
  }
  std::string joined;
  for (const std::string& line : file.code) {
    joined += line;
    joined += '\n';
  }
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string name = MutexMemberName(file.code[i], /*skip_references=*/true);
    if (name.empty()) {
      continue;
    }
    if (joined.find("HF_GUARDED_BY(" + name + ")") == std::string::npos &&
        !Allowed(file, i, "unreferenced-guard")) {
      findings.push_back({file.path, static_cast<int>(i) + 1, "unreferenced-guard",
                          "mutex member '" + name + "' has zero HF_GUARDED_BY(" + name +
                              ") references in this file; annotate the protected members "
                              "(a `// guards:` comment alone is not machine-checked)"});
    }
  }
}

// condvar-wait: a condition wait must re-check its predicate in a loop.
// Textual heuristic: a member call `x.Wait(arg)` / `x->Wait(arg)` with a
// non-empty argument list (CondVar::Wait takes the mutex; zero-arg Wait()
// methods on futures etc. stay out of scope) is loop-shaped iff the
// nearest preceding control keyword — same line before the call, else up
// to two previous lines — is `while` or `do`.
void CheckCondVarWait(const FileText& file, std::vector<Finding>& findings) {
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    size_t pos = FindToken(line, "Wait");
    for (; pos != std::string::npos; pos = FindToken(line, "Wait", pos + 4)) {
      const size_t after = pos + 4;
      if (after >= line.size() || line[after] != '(') {
        continue;
      }
      const bool member_call =
          (pos > 0 && line[pos - 1] == '.') ||
          (pos > 1 && line[pos - 2] == '-' && line[pos - 1] == '>');
      const size_t arg = line.find_first_not_of(" \t", after + 1);
      const bool has_arg = arg != std::string::npos && line[arg] != ')';
      if (!member_call || !has_arg || Allowed(file, i, "condvar-wait")) {
        continue;
      }
      std::string context;
      for (size_t back = i >= 2 ? i - 2 : 0; back < i; ++back) {
        context += file.code[back];
        context += '\n';
      }
      context += line.substr(0, pos);
      std::string nearest;
      size_t nearest_pos = 0;
      for (const char* keyword : {"while", "do", "if", "for", "switch"}) {
        size_t k = FindToken(context, keyword);
        for (; k != std::string::npos; k = FindToken(context, keyword, k + 1)) {
          if (nearest.empty() || k >= nearest_pos) {
            nearest = keyword;
            nearest_pos = k;
          }
        }
      }
      if (nearest == "while" || nearest == "do") {
        continue;
      }
      if (nearest == "if") {
        findings.push_back({file.path, static_cast<int>(i) + 1, "condvar-wait",
                            "CondVar::Wait guarded by 'if'; spurious/stolen wakeups "
                            "require re-checking the predicate: while (pred) { Wait; }"});
      } else {
        findings.push_back({file.path, static_cast<int>(i) + 1, "condvar-wait",
                            "CondVar::Wait outside a while (predicate) loop; naked waits "
                            "miss spurious/stolen wakeups"});
      }
    }
  }
}

void CheckRawDiagnostics(const FileText& file, std::vector<Finding>& findings) {
  // Library code only: examples, benches, tests, and tools are user-facing
  // programs whose stdout/stderr IS the product. The logger and the
  // observability sinks are the two sanctioned writers.
  if (!StartsWith(file.path, "src/") || StartsWith(file.path, "src/obs/") ||
      StartsWith(file.path, "src/common/logging.")) {
    return;
  }
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    if (line.empty()) {
      continue;
    }
    if (line.find("std::cerr") != std::string::npos &&
        !Allowed(file, i, "raw-diagnostics")) {
      findings.push_back({file.path, static_cast<int>(i) + 1, "raw-diagnostics",
                          "std::cerr in library code; use HF_LOG (src/common/logging.h) "
                          "or an src/obs/ sink"});
    }
    for (const char* fn : {"printf", "fprintf"}) {
      const size_t pos = FindToken(line, fn);
      if (pos != std::string::npos && pos + std::string(fn).size() < line.size() &&
          line[pos + std::string(fn).size()] == '(' &&
          !Allowed(file, i, "raw-diagnostics")) {
        findings.push_back({file.path, static_cast<int>(i) + 1, "raw-diagnostics",
                            std::string(fn) + "() in library code; use HF_LOG "
                            "(src/common/logging.h) or an src/obs/ sink"});
      }
    }
  }
}

void CheckThreadConstruction(const FileText& file, std::vector<Finding>& findings) {
  if (file.path == "src/common/thread_pool.cc" || file.path == "src/common/thread_pool.h") {
    return;
  }
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    for (const char* type : {"std::thread", "std::jthread"}) {
      size_t pos = line.find(type);
      while (pos != std::string::npos) {
        const size_t after = pos + std::string(type).size();
        // `std::thread::id`, `std::thread::hardware_concurrency` etc. are
        // type access, not construction; `std::this_thread` never matches.
        const bool scope_access = after + 1 < line.size() && line[after] == ':' &&
                                  line[after + 1] == ':';
        const bool ident_continue = after < line.size() && IsIdentChar(line[after]);
        if (!scope_access && !ident_continue && !Allowed(file, i, "thread-construction")) {
          findings.push_back({file.path, static_cast<int>(i) + 1, "thread-construction",
                              "std::thread outside src/common/thread_pool.cc; use "
                              "ThreadPool (Submit/ParallelFor)"});
        }
        pos = line.find(type, after);
      }
    }
  }
}

void CheckAnnotatedSync(const FileText& file, std::vector<Finding>& findings) {
  bool covered = false;
  for (const char* prefix :
       {"src/rollout/", "src/tensor/", "src/nn/", "src/serving/", "src/kvcache/"}) {
    covered = covered || file.path.rfind(prefix, 0) == 0;
  }
  if (!covered) {
    return;
  }
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    for (const char* type :
         {"std::mutex", "std::recursive_mutex", "std::shared_mutex", "std::timed_mutex",
          "std::lock_guard", "std::unique_lock", "std::scoped_lock", "std::shared_lock",
          "std::condition_variable", "std::condition_variable_any"}) {
      size_t pos = line.find(type);
      while (pos != std::string::npos) {
        const size_t after = pos + std::string(type).size();
        // Skip longer identifiers (std::condition_variable_any has its own
        // probe; std::mutex_* would be a different name entirely).
        const bool ident_continue = after < line.size() && IsIdentChar(line[after]);
        if (!ident_continue && !Allowed(file, i, "annotated-sync")) {
          findings.push_back({file.path, static_cast<int>(i) + 1, "annotated-sync",
                              std::string(type) +
                                  " in an annotated-sync subsystem (src/rollout/, src/tensor/, "
                                  "src/nn/, src/serving/, src/kvcache/); use the annotated "
                                  "Mutex / MutexLock / CondVar from src/common/annotations.h"});
        }
        pos = line.find(type, after);
      }
    }
  }
}

// SIMD intrinsics stay behind the dispatch layer: only src/tensor/simd.h
// and src/tensor/simd.cc may include intrinsics headers or spell
// _mm*/__m* tokens. Everything else calls the simd:: kernels, which pair
// each AVX2 path with the scalar sequence it must match bitwise — an
// intrinsic elsewhere would dodge that contract.
void CheckSimdIntrinsics(const FileText& file, std::vector<Finding>& findings) {
  if (file.path == "src/tensor/simd.h" || file.path == "src/tensor/simd.cc") {
    return;
  }
  for (size_t i = 0; i < file.raw.size(); ++i) {
    // Include check runs on the raw line (includes never hide in strings
    // that matter, and the directive must start the line).
    const std::string& raw = file.raw[i];
    const size_t first = raw.find_first_not_of(" \t");
    if (first != std::string::npos && raw[first] == '#' &&
        raw.find("include", first) != std::string::npos &&
        raw.find("intrin.h") != std::string::npos) {
      if (!Allowed(file, i, "simd-intrinsics")) {
        findings.push_back({file.path, static_cast<int>(i) + 1, "simd-intrinsics",
                            "intrinsics header include outside src/tensor/simd.{h,cc}; "
                            "use the dispatched simd:: kernels"});
      }
      continue;
    }
    const std::string& line = file.code[i];
    for (const char* needle : {"_mm_", "_mm256_", "_mm512_", "__m128", "__m256", "__m512"}) {
      const size_t pos = line.find(needle);
      if (pos == std::string::npos) {
        continue;
      }
      // `x_mm_...` is some other identifier, not an intrinsic.
      if (pos > 0 && IsIdentChar(line[pos - 1])) {
        continue;
      }
      if (!Allowed(file, i, "simd-intrinsics")) {
        findings.push_back({file.path, static_cast<int>(i) + 1, "simd-intrinsics",
                            std::string(needle) +
                                " intrinsic outside src/tensor/simd.{h,cc}; use the "
                                "dispatched simd:: kernels"});
      }
      break;  // One finding per line is enough.
    }
  }
}

// ---------------------------------------------------------------------------
// doc-drift: documentation references must resolve against the tree.
// ---------------------------------------------------------------------------

bool IsIdentifier(const std::string& s) {
  if (s.empty() || (std::isalpha(static_cast<unsigned char>(s[0])) == 0 && s[0] != '_')) {
    return false;
  }
  for (char c : s) {
    if (!IsIdentChar(c)) {
      return false;
    }
  }
  return true;
}

// One backtick-quoted span from a docs/*.md file (fenced ``` blocks are
// code examples, not references, and are skipped).
struct DocRef {
  std::string doc;   // Repo-root-relative doc path.
  int line = 0;      // 1-based line of the opening backtick.
  std::string text;  // Span content, newlines collapsed to spaces.
};

std::vector<DocRef> ExtractDocRefs(const fs::path& doc_path, const std::string& rel_path) {
  std::vector<DocRef> refs;
  std::ifstream in(doc_path);
  if (!in) {
    return refs;
  }
  bool in_fence = false;
  bool in_span = false;
  DocRef current;
  int line_number = 0;
  for (std::string line; std::getline(in, line); ) {
    ++line_number;
    const size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line.compare(first, 3, "```") == 0) {
      in_fence = !in_fence;
      in_span = false;  // A fence terminates any dangling inline span.
      continue;
    }
    if (in_fence) {
      continue;
    }
    for (char c : line) {
      if (c == '`') {
        if (in_span) {
          refs.push_back(current);
          current = DocRef();
        } else {
          current.doc = rel_path;
          current.line = line_number;
          current.text.clear();
        }
        in_span = !in_span;
      } else if (in_span) {
        current.text.push_back(c);
      }
    }
    if (in_span) {
      current.text.push_back(' ');  // Inline spans may wrap across lines.
    }
  }
  return refs;
}

// A documentation path reference: rooted at one of the walked top-level
// directories, made of path characters only. `src/...`-style ellipses and
// spans with spaces are prose, not references.
bool LooksLikePathRef(const std::string& text) {
  bool rooted = false;
  for (const char* top : {"src/", "tests/", "bench/", "tools/", "docs/", "configs/",
                          "examples/"}) {
    if (StartsWith(text, top) || text == std::string(top).substr(0, std::string(top).size() - 1)) {
      rooted = true;
      break;
    }
  }
  if (!rooted || text.find("...") != std::string::npos) {
    return false;
  }
  for (char c : text) {
    if (!IsIdentChar(c) && c != '/' && c != '.' && c != '-' && c != '*') {
      return false;
    }
  }
  return true;
}

// Resolves a path reference. Globs check the prefix before the first '*'
// against the directory's entries; extension-less references (binary names
// like `tools/hybridflow_run`) fall back to .cpp/.cc sources.
bool PathRefResolves(const fs::path& root, const std::string& text) {
  const size_t star = text.find('*');
  if (star != std::string::npos) {
    const std::string prefix = text.substr(0, star);
    const size_t slash = prefix.rfind('/');
    const fs::path dir = root / prefix.substr(0, slash == std::string::npos ? 0 : slash);
    const std::string name_prefix = slash == std::string::npos ? prefix : prefix.substr(slash + 1);
    if (!fs::is_directory(dir)) {
      return false;
    }
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (StartsWith(entry.path().filename().string(), name_prefix)) {
        return true;
      }
    }
    return false;
  }
  if (fs::exists(root / text)) {
    return true;
  }
  for (const char* ext : {".cpp", ".cc", ".h"}) {
    if (fs::exists(root / (text + ext))) {
      return true;
    }
  }
  return false;
}

// Word-bounded search in the concatenated stripped-code corpus.
bool CorpusHasWord(const std::string& corpus, const std::string& word) {
  return FindToken(corpus, word) != std::string::npos;
}

// A type is "declared" when `class X` / `struct X` / `enum X` / `using X`
// appears in code (enum class matches via its `class X` substring).
// Attribute-decorated declarations (`class HF_CAPABILITY("mutex") Mutex`)
// defeat the keyword pattern, so any word-bounded occurrence of the name in
// code is accepted as weaker evidence — a renamed type still vanishes from
// the corpus entirely, which is the drift this rule exists to catch.
bool CorpusHasType(const std::string& corpus, const std::string& name) {
  for (const char* keyword : {"class ", "struct ", "enum ", "using "}) {
    const std::string needle = std::string(keyword) + name;
    size_t pos = corpus.find(needle);
    while (pos != std::string::npos) {
      const bool left_ok = pos == 0 || !IsIdentChar(corpus[pos - 1]);
      const size_t after = pos + needle.size();
      const bool right_ok = after >= corpus.size() || !IsIdentChar(corpus[after]);
      if (left_ok && right_ok) {
        return true;
      }
      pos = corpus.find(needle, pos + 1);
    }
  }
  return FindToken(corpus, name) != std::string::npos;
}

// Splits `head` ("ClassName::Member", "ClassName::{kA, kB}", possibly
// hybridflow::-qualified) into the class token and the member tokens.
// Returns false when the text is not a symbol reference (no `::`, a URL,
// std::, or non-identifier components).
bool ParseSymbolRef(const std::string& text, std::string* type_name,
                    std::vector<std::string>* members) {
  if (text.find("::") == std::string::npos || text.find("://") != std::string::npos) {
    return false;
  }
  std::string head = text.substr(0, text.find('('));
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t sep = head.find("::", start);
    parts.push_back(head.substr(start, sep == std::string::npos ? sep : sep - start));
    if (sep == std::string::npos) {
      break;
    }
    start = sep + 2;
  }
  if (parts.size() < 2 || parts[0] == "std") {
    return false;
  }
  if (parts[0] == "hybridflow") {
    parts.erase(parts.begin());
  }
  if (!IsIdentifier(parts[0])) {
    return false;
  }
  *type_name = parts[0];
  members->clear();
  for (size_t i = 1; i < parts.size(); ++i) {
    const std::string& part = parts[i];
    if (part.empty()) {
      continue;  // `Class::` with nothing usable after it.
    }
    if (part[0] == '{') {
      // Brace list `Class::{kA, kB}`: every identifier inside is a member.
      std::string ident;
      for (char c : part) {
        if (IsIdentChar(c)) {
          ident.push_back(c);
        } else if (!ident.empty()) {
          members->push_back(ident);
          ident.clear();
        }
      }
      if (!ident.empty()) {
        members->push_back(ident);
      }
    } else if (IsIdentifier(part)) {
      members->push_back(part);
    } else {
      return false;  // Templates or operators: out of scope for the rule.
    }
  }
  return true;
}

void CheckDocRefs(const fs::path& root, const std::string& corpus,
                  std::vector<Finding>& findings, int* docs_checked) {
  const fs::path docs_dir = root / "docs";
  if (!fs::exists(docs_dir)) {
    return;
  }
  for (const auto& entry : fs::directory_iterator(docs_dir)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".md") {
      continue;
    }
    const std::string rel = fs::relative(entry.path(), root).generic_string();
    for (const DocRef& ref : ExtractDocRefs(entry.path(), rel)) {
      if (LooksLikePathRef(ref.text)) {
        if (!PathRefResolves(root, ref.text)) {
          findings.push_back({ref.doc, ref.line, "doc-drift",
                              "path reference `" + ref.text + "` does not resolve"});
        }
        continue;
      }
      std::string type_name;
      std::vector<std::string> members;
      if (!ParseSymbolRef(ref.text, &type_name, &members)) {
        continue;
      }
      if (!CorpusHasType(corpus, type_name)) {
        findings.push_back({ref.doc, ref.line, "doc-drift",
                            "`" + ref.text + "`: type '" + type_name +
                                "' is not declared anywhere in the tree"});
        continue;
      }
      for (const std::string& member : members) {
        if (!CorpusHasWord(corpus, member)) {
          findings.push_back({ref.doc, ref.line, "doc-drift",
                              "`" + ref.text + "`: member '" + member +
                                  "' does not occur in the tree"});
        }
      }
    }
    ++*docs_checked;
  }
}

// Full lint pass over one tree. Returns findings; `files_checked` counts
// C++ sources, `docs_checked` counts docs/*.md files scanned for drift.
std::vector<Finding> LintTree(const fs::path& root, int* files_checked, int* docs_checked) {
  std::vector<Finding> findings;
  std::string corpus;
  for (const char* top : {"src", "tests", "bench", "tools"}) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") {
        continue;
      }
      FileText file;
      file.path = fs::relative(entry.path(), root).generic_string();
      std::ifstream in(entry.path());
      if (!in) {
        findings.push_back({file.path, 0, "io", "cannot read file"});
        continue;
      }
      for (std::string line; std::getline(in, line);) {
        if (!line.empty() && line.back() == '\r') {
          line.pop_back();
        }
        file.raw.push_back(std::move(line));
      }
      StripCommentsAndStrings(file);
      CheckIncludeGuard(file, findings);
      CheckIncludes(file, root, findings);
      CheckBannedCalls(file, findings);
      CheckMutexGuards(file, findings);
      CheckUnreferencedGuard(file, findings);
      CheckCondVarWait(file, findings);
      CheckRawDiagnostics(file, findings);
      CheckThreadConstruction(file, findings);
      CheckAnnotatedSync(file, findings);
      CheckSimdIntrinsics(file, findings);
      for (const std::string& line : file.code) {
        corpus += line;
        corpus += '\n';
      }
      ++*files_checked;
    }
  }
  CheckDocRefs(root, corpus, findings, docs_checked);
  return findings;
}

// --docs-selftest: the doc-drift rule must accept valid references and
// flag each kind of stale one (missing path, missing member, missing
// type) in a synthetic tree — a regression gate on the rule itself.
int RunDocsSelftest() {
  const fs::path tree = fs::path("hflint_docs_selftest_tree");
  fs::remove_all(tree);
  fs::create_directories(tree / "src/widget");
  fs::create_directories(tree / "docs");
  {
    std::ofstream header(tree / "src/widget/widget.h");
    header << "#ifndef SRC_WIDGET_WIDGET_H_\n"
           << "#define SRC_WIDGET_WIDGET_H_\n"
           << "namespace hybridflow {\n"
           << "class Widget {\n"
           << " public:\n"
           << "  void Frobnicate();\n"
           << "  int knob_count = 0;\n"
           << "};\n"
           << "enum class WidgetMode { kFast, kSlow };\n"
           << "}  // namespace hybridflow\n"
           << "#endif  // SRC_WIDGET_WIDGET_H_\n";
  }
  {
    std::ofstream good(tree / "docs/GOOD.md");
    good << "# Widgets\n\n"
         << "See `src/widget/widget.h` (also `src/widget/widget.*`) for\n"
         << "`Widget::Frobnicate`, `Widget::knob_count`, and\n"
         << "`WidgetMode::{kFast, kSlow}`. `hybridflow::Widget` works too.\n\n"
         << "```\nfenced blocks are ignored: `src/widget/nonexistent.h`\n```\n";
  }
  {
    std::ofstream stale(tree / "docs/STALE.md");
    stale << "# Stale\n\n"
          << "A removed file `src/widget/gadget.h`, a renamed method\n"
          << "`Widget::Defrobulate`, and a deleted type `Gizmo::Spin`.\n";
  }
  int files_checked = 0;
  int docs_checked = 0;
  const std::vector<Finding> findings = LintTree(tree, &files_checked, &docs_checked);
  fs::remove_all(tree);
  int failures = 0;
  if (docs_checked != 2) {
    std::cerr << "selftest: expected 2 docs scanned, got " << docs_checked << "\n";
    ++failures;
  }
  std::vector<std::string> expected = {"src/widget/gadget.h", "Defrobulate", "Gizmo"};
  for (const Finding& finding : findings) {
    if (finding.rule != "doc-drift") {
      std::cerr << "selftest: unexpected non-doc finding " << finding.file << ":"
                << finding.line << " [" << finding.rule << "] " << finding.message << "\n";
      ++failures;
      continue;
    }
    if (finding.file != "docs/STALE.md") {
      std::cerr << "selftest: false positive in " << finding.file << ": " << finding.message
                << "\n";
      ++failures;
      continue;
    }
    bool matched = false;
    for (auto it = expected.begin(); it != expected.end(); ++it) {
      if (finding.message.find(*it) != std::string::npos) {
        expected.erase(it);
        matched = true;
        break;
      }
    }
    if (!matched) {
      std::cerr << "selftest: unexpected finding: " << finding.message << "\n";
      ++failures;
    }
  }
  for (const std::string& missing : expected) {
    std::cerr << "selftest: stale reference '" << missing << "' was NOT flagged\n";
    ++failures;
  }
  if (failures > 0) {
    std::cerr << "hflint --docs-selftest: " << failures << " failure(s)\n";
    return 1;
  }
  std::cout << "hflint --docs-selftest: ok (3 stale references flagged, 0 false positives)\n";
  return 0;
}

// --rules-selftest: the concurrency and confinement rules must flag each
// known-bad shape (if-guarded wait, naked wait, comment-only guard,
// intrinsics outside src/tensor/simd.*) and accept the good ones
// (while-looped wait, HF_GUARDED_BY-referenced mutex, intrinsics inside
// simd.h, the allow() hatches) in a synthetic tree — a regression gate
// on the rules.
int RunRulesSelftest() {
  const fs::path tree = fs::path("hflint_rules_selftest_tree");
  fs::remove_all(tree);
  fs::create_directories(tree / "src/gadget");
  fs::create_directories(tree / "src/tensor");
  {
    std::ofstream header(tree / "src/gadget/gadget.h");
    header << "#ifndef SRC_GADGET_GADGET_H_\n"
           << "#define SRC_GADGET_GADGET_H_\n"
           << "namespace hybridflow {\n"
           << "class Gadget {\n"
           << " public:\n"
           << "  void IfGuardedWait() {\n"
           << "    if (!ready_) {\n"
           << "      cv_.Wait(mu_);\n"
           << "    }\n"
           << "  }\n"
           << "  void NakedWait() {\n"
           << "    cv_.Wait(mu_);\n"
           << "  }\n"
           << "  void LoopedWait() {\n"
           << "    while (!ready_) {\n"
           << "      cv_.Wait(mu_);\n"
           << "    }\n"
           << "  }\n"
           << "  void SameLineLoopedWait() {\n"
           << "    while (!ready_) cv_.Wait(mu_);\n"
           << "  }\n"
           << "  void AllowedWait() {\n"
           << "    cv_.Wait(mu_);  // hflint: allow(condvar-wait)\n"
           << "  }\n"
           << " private:\n"
           << "  Mutex lonely_mu_;  // guards: ready_ (comment only: unreferenced)\n"
           << "  CondVar cv_;\n"
           << "  bool ready_ = false;\n"
           << "};\n"
           << "class Widget {\n"
           << " private:\n"
           << "  Mutex mu_;\n"
           << "  bool spinning_ HF_GUARDED_BY(mu_) = false;\n"
           << "};\n"
           << "class Escape {\n"
           << " private:\n"
           << "  // guards: a cross-object invariant the analysis cannot express.\n"
           << "  Mutex mu_;  // hflint: allow(unreferenced-guard)\n"
           << "};\n"
           << "}  // namespace hybridflow\n"
           << "#endif  // SRC_GADGET_GADGET_H_\n";
  }
  {
    // Intrinsics in the confined home are fine; anywhere else both the
    // header include and the token forms must be flagged, and the
    // allow() hatch must suppress.
    std::ofstream simd(tree / "src/tensor/simd.h");
    simd << "#ifndef SRC_TENSOR_SIMD_H_\n"
         << "#define SRC_TENSOR_SIMD_H_\n"
         << "#include <immintrin.h>\n"
         << "namespace hybridflow {\n"
         << "inline __m256 LaneZero() { return _mm256_setzero_ps(); }\n"
         << "}  // namespace hybridflow\n"
         << "#endif  // SRC_TENSOR_SIMD_H_\n";
    std::ofstream vec(tree / "src/gadget/vec.cc");
    vec << "#include <immintrin.h>\n"
        << "namespace hybridflow {\n"
        << "float Escaped() {\n"
        << "  __m256 v = _mm256_setzero_ps();\n"
        << "  return v[0];\n"
        << "}\n"
        << "float Hatched() {\n"
        << "  __m256 z = _mm256_setzero_ps();  // hflint: allow(simd-intrinsics)\n"
        << "  return z[0];\n"
        << "}\n"
        << "}  // namespace hybridflow\n";
  }
  int files_checked = 0;
  int docs_checked = 0;
  const std::vector<Finding> findings = LintTree(tree, &files_checked, &docs_checked);
  fs::remove_all(tree);
  int failures = 0;
  // Expected findings, identified by (rule, message needle).
  std::vector<std::pair<std::string, std::string>> expected = {
      {"condvar-wait", "guarded by 'if'"},
      {"condvar-wait", "outside a while"},
      {"unreferenced-guard", "zero HF_GUARDED_BY(lonely_mu_)"},
      {"simd-intrinsics", "intrinsics header include"},
      {"simd-intrinsics", "_mm256_ intrinsic outside"},
  };
  for (const Finding& finding : findings) {
    bool matched = false;
    for (auto it = expected.begin(); it != expected.end(); ++it) {
      if (finding.rule == it->first &&
          finding.message.find(it->second) != std::string::npos) {
        expected.erase(it);
        matched = true;
        break;
      }
    }
    if (!matched) {
      std::cerr << "selftest: unexpected finding " << finding.file << ":" << finding.line
                << " [" << finding.rule << "] " << finding.message << "\n";
      ++failures;
    }
  }
  for (const auto& [rule, needle] : expected) {
    std::cerr << "selftest: expected [" << rule << "] finding matching '" << needle
              << "' was NOT flagged\n";
    ++failures;
  }
  if (failures > 0) {
    std::cerr << "hflint --rules-selftest: " << failures << " failure(s)\n";
    return 1;
  }
  std::cout << "hflint --rules-selftest: ok (5 bad shapes flagged, allow() hatches, "
               "loop-shaped waits, and confined intrinsics accepted)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--docs-selftest") {
    return RunDocsSelftest();
  }
  if (argc > 1 && std::string(argv[1]) == "--rules-selftest") {
    return RunRulesSelftest();
  }
  const fs::path root = argc > 1 ? fs::path(argv[1]) : fs::path(".");
  if (!fs::exists(root / "src")) {
    std::cerr << "hflint: '" << root.string() << "' does not look like the repo root\n";
    return 2;
  }
  int files_checked = 0;
  int docs_checked = 0;
  const std::vector<Finding> findings = LintTree(root, &files_checked, &docs_checked);
  for (const Finding& finding : findings) {
    std::cerr << finding.file << ":" << finding.line << ": [" << finding.rule << "] "
              << finding.message << "\n";
  }
  if (!findings.empty()) {
    std::cerr << "hflint: " << findings.size() << " finding(s) in " << files_checked
              << " files\n";
    return 1;
  }
  std::cout << "hflint: clean (" << files_checked << " files, " << docs_checked
            << " docs)\n";
  return 0;
}
