#!/usr/bin/env bash
# One-shot pre-PR gate: configure, build (warnings-as-errors), lint, test,
# then rebuild and re-test the concurrency surface under ThreadSanitizer —
# including a seeded schedule-fuzz pass (HF_SCHEDULE_FUZZ) that perturbs
# thread interleavings so TSan sees more than the quiet-box schedule.
# See docs/STATIC_ANALYSIS.md.
#
# Usage:
#   tools/check.sh                    # full gate (normal + TSan + fuzz phases)
#   tools/check.sh --no-sanitize      # skip the TSan phase (and its fuzz pass)
#   tools/check.sh --full-tsan        # run the ENTIRE test suite under TSan
#   tools/check.sh --asan             # add an ASan+UBSan phase as well
#   tools/check.sh --ubsan            # add a standalone UBSan phase
#                                     #   (-fno-sanitize-recover: first hit fails)
#   tools/check.sh --no-schedule-fuzz # skip the seeded schedule-fuzz pass
#
# Build trees: build-check/ (normal), build-tsan/, build-asan/, build-ubsan/
# — kept apart from the developer's build/ so the gate never clobbers
# incremental state.
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
JOBS="$(nproc 2>/dev/null || echo 2)"

# Tests exercising the concurrency surface; the default TSan phase runs
# these (the full suite under TSan is --full-tsan).
TSAN_TESTS='ThreadPool|ParallelDispatch|Determinism|Obs|Rollout|Async|Kernel|LockGraph|ScheduleFuzz|Quantile|Latency|Serving|KvCache'
# Subset re-run under seeded schedule perturbation: the tests that
# actually race threads (lock-graph/fuzz unit tests pin their own seeds).
FUZZ_TESTS='ThreadPool|Rollout|Async|Kernel|Quantile|Latency|Serving|KvCache'
# Fixed seeds, not $RANDOM: a gate failure must reproduce by exporting
# the printed HF_SCHEDULE_FUZZ value.
FUZZ_SEEDS="1 7 1337"

SANITIZE=1
FULL_TSAN=0
ASAN=0
UBSAN=0
SCHEDULE_FUZZ=1
for arg in "$@"; do
  case "$arg" in
    --no-sanitize) SANITIZE=0 ;;
    --full-tsan) FULL_TSAN=1 ;;
    --asan) ASAN=1 ;;
    --ubsan) UBSAN=1 ;;
    --schedule-fuzz) SCHEDULE_FUZZ=1 ;;
    --no-schedule-fuzz) SCHEDULE_FUZZ=0 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

step() { echo; echo "==== $* ===="; }

step "configure + build (HF_WERROR=ON)"
cmake -B build-check -S . -DHF_WERROR=ON >/dev/null
cmake --build build-check -j "$JOBS"

step "hflint"
./build-check/tools/hflint "$ROOT"

step "ctest (normal build)"
ctest --test-dir build-check --output-on-failure -j "$JOBS"

# Scalar-fallback phase: HF_SIMD=off forces the scalar kernel tier, so
# the SIMD<->scalar bitwise-equivalence suite re-runs on the exact path a
# non-AVX2 host would take (the in-process SetSimdOverride sweeps cover
# the same comparison, but only this catches an env-plumbing regression).
step "ctest kernel suite with HF_SIMD=off (scalar fallback)"
HF_SIMD=off \
  ctest --test-dir build-check --output-on-failure -j "$JOBS" \
  -R 'Kernel|MatMul|LayerNorm|Tensor|Autograd|Adam|bench_kernels_gate'

if [ "$SANITIZE" -eq 1 ]; then
  step "configure + build (HF_SANITIZE=thread)"
  cmake -B build-tsan -S . -DHF_WERROR=ON -DHF_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS"

  step "ctest under ThreadSanitizer"
  export TSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/tsan.supp halt_on_error=1 second_deadlock_stack=1"
  if [ "$FULL_TSAN" -eq 1 ]; then
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS"
  else
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -R "$TSAN_TESTS"
  fi

  if [ "$SCHEDULE_FUZZ" -eq 1 ]; then
    for seed in $FUZZ_SEEDS; do
      step "ctest under TSan + schedule fuzz (HF_SCHEDULE_FUZZ=$seed)"
      HF_SCHEDULE_FUZZ="$seed" \
        ctest --test-dir build-tsan --output-on-failure -j "$JOBS" -R "$FUZZ_TESTS"
    done
  fi
  unset TSAN_OPTIONS
fi

if [ "$ASAN" -eq 1 ]; then
  step "configure + build (HF_SANITIZE=address)"
  cmake -B build-asan -S . -DHF_WERROR=ON -DHF_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$JOBS"

  step "ctest under ASan+UBSan"
  export LSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/lsan.supp"
  export UBSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/ubsan.supp print_stacktrace=1"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
  unset LSAN_OPTIONS UBSAN_OPTIONS
fi

if [ "$UBSAN" -eq 1 ]; then
  step "configure + build (HF_SANITIZE=undefined)"
  cmake -B build-ubsan -S . -DHF_WERROR=ON -DHF_SANITIZE=undefined >/dev/null
  cmake --build build-ubsan -j "$JOBS"

  step "ctest under UBSan (-fno-sanitize-recover)"
  export UBSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/ubsan.supp print_stacktrace=1"
  ctest --test-dir build-ubsan --output-on-failure -j "$JOBS"
  unset UBSAN_OPTIONS
fi

step "all checks passed"
