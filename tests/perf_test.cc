#include <gtest/gtest.h>

#include <numeric>

#include "src/perf/perf_model.h"

namespace hybridflow {
namespace {

std::vector<DeviceId> Devices(int n) {
  std::vector<DeviceId> devices(static_cast<size_t>(n));
  std::iota(devices.begin(), devices.end(), 0);
  return devices;
}

class PerfModelTest : public ::testing::Test {
 protected:
  ClusterSpec cluster_ = ClusterSpec::WithGpus(16);
  PerfModel perf_{ModelSpec::Llama7B(), cluster_};
};

TEST_F(PerfModelTest, TrainStepScalesDownWithMoreGpus) {
  const double small = perf_.TrainStepTime({1, 2, 2}, Devices(4), 128, 2048, 4);
  ClusterSpec big_cluster = ClusterSpec::WithGpus(16);
  PerfModel big_perf(ModelSpec::Llama7B(), big_cluster);
  const double big = big_perf.TrainStepTime({1, 2, 8}, Devices(16), 128, 2048, 4);
  EXPECT_GT(small, big);
}

TEST_F(PerfModelTest, PipelineBubbleShrinksWithMicrobatches) {
  // Large enough batch that per-microbatch utilization stays saturated;
  // then more microbatches strictly shrink the (p-1)/m bubble.
  const double few = perf_.TrainStepTime({4, 1, 4}, Devices(16), 512, 2048, 4);
  const double many = perf_.TrainStepTime({4, 1, 4}, Devices(16), 512, 2048, 16);
  EXPECT_GT(few, many);
}

TEST_F(PerfModelTest, TinyPerGpuBatchesDegradeUtilization) {
  // §8.3: with a fixed global batch, growing DP shrinks per-GPU work and
  // the achieved MFU drops — throughput stops scaling linearly.
  const double half_batch = perf_.TrainStepTime({1, 1, 16}, Devices(16), 16, 2048, 1);
  const double full_batch = perf_.TrainStepTime({1, 1, 16}, Devices(16), 64, 2048, 1);
  // 4x the work in less than 4x the time.
  EXPECT_LT(full_batch, 3.9 * half_batch);
}

TEST_F(PerfModelTest, TensorParallelAddsCommOverhead) {
  // Same model-parallel degree: tp=4 pays activation all-reduces that
  // pp=4 does not (pp pays a bubble instead; at high microbatch counts TP
  // comm dominates for long sequences).
  const double tp_heavy = perf_.TrainStepTime({1, 4, 4}, Devices(16), 128, 2048, 16);
  const double pp_heavy = perf_.TrainStepTime({4, 1, 4}, Devices(16), 128, 2048, 16);
  EXPECT_GT(tp_heavy, 0.0);
  EXPECT_GT(pp_heavy, 0.0);
}

TEST_F(PerfModelTest, InferIsCheaperThanTrain) {
  EXPECT_LT(perf_.InferTime({1, 2, 8}, Devices(16), 128, 2048),
            perf_.TrainStepTime({1, 2, 8}, Devices(16), 128, 2048, 4));
}

TEST_F(PerfModelTest, ZeroTrainChargesParamGathers) {
  ZeroConfig stage3{ZeroStage::kStage3, 16};
  ZeroConfig stage2{ZeroStage::kStage2, 16};
  EXPECT_GT(perf_.ZeroTrainStepTime(stage3, Devices(16), 128, 2048),
            perf_.ZeroTrainStepTime(stage2, Devices(16), 128, 2048));
}

TEST_F(PerfModelTest, ZeroInferChargesGatherOnlyForStage3) {
  ZeroConfig stage3{ZeroStage::kStage3, 16};
  ZeroConfig none{ZeroStage::kNone, 16};
  EXPECT_GT(perf_.ZeroInferTime(stage3, Devices(16), 128, 2048),
            perf_.ZeroInferTime(none, Devices(16), 128, 2048));
}

TEST_F(PerfModelTest, ScalarHeadSlightlyCheaper) {
  PerfModel scalar(ModelSpec::Llama7B(), cluster_, /*scalar_head=*/true);
  EXPECT_LT(scalar.num_params(), perf_.num_params());
  EXPECT_LT(scalar.InferTime({1, 2, 8}, Devices(16), 128, 2048),
            perf_.InferTime({1, 2, 8}, Devices(16), 128, 2048));
}

// --- Generation -------------------------------------------------------------

TEST_F(PerfModelTest, GenerationDecodeDominatesPrefill) {
  GenTimeBreakdown breakdown = perf_.GenerateTime({1, 2}, Devices(2), 128, 1024, 1024,
                                                  40e9, /*use_kv_cache=*/true);
  EXPECT_GT(breakdown.decode_seconds, breakdown.prefill_seconds);
}

TEST_F(PerfModelTest, NoKvCacheIsMuchSlower) {
  GenTimeBreakdown cached =
      perf_.GenerateTime({1, 2}, Devices(2), 128, 1024, 1024, 40e9, true);
  GenTimeBreakdown uncached =
      perf_.GenerateTime({1, 2}, Devices(2), 128, 1024, 1024, 40e9, false);
  EXPECT_GT(uncached.total(), 5.0 * cached.total());
}

TEST_F(PerfModelTest, TinyKvBudgetForcesWaves) {
  GenTimeBreakdown roomy =
      perf_.GenerateTime({1, 2}, Devices(2), 128, 1024, 1024, 60e9, true);
  GenTimeBreakdown cramped =
      perf_.GenerateTime({1, 2}, Devices(2), 128, 1024, 1024, 2e9, true);
  EXPECT_GT(cramped.waves, roomy.waves);
  EXPECT_GT(cramped.total(), roomy.total());
}

TEST_F(PerfModelTest, Figure15ShapeSmallTpBeatsLargeTpUntilKvBound) {
  // §8.4 / Fig 15: on a fixed device budget, generation latency is minimized
  // at a moderate t_g: t_g = 8 underutilizes, t_g too small starves KVCache.
  // Replicate: 8 GPUs available for generation of batch 1024.
  const int64_t batch = 1024;
  std::map<int, double> latency;
  for (int tg : {1, 2, 4, 8}) {
    const int replicas = 8 / tg;
    const int64_t per_replica = batch / replicas;
    // Best-effort KV budget: capacity minus resident training state (7B
    // colocated, ~15 GB) minus the gathered generation shard.
    const double budget =
        cluster_.gpu.memory_bytes - 15e9 - perf_.GenParamBytesPerGpu({1, tg});
    GenTimeBreakdown breakdown = perf_.GenerateTime({1, tg}, Devices(tg), per_replica, 1024,
                                                    1024, budget, true);
    latency[tg] = breakdown.total();
  }
  // tg=8 (NeMo-style) must be the worst or near-worst of the sweep.
  EXPECT_GT(latency[8], latency[2]);
  EXPECT_GT(latency[8], latency[4]);
}

TEST_F(PerfModelTest, PipelineGenerationPaysHandoffPenalty) {
  GenTimeBreakdown flat =
      perf_.GenerateTime({1, 4}, Devices(4), 128, 1024, 1024, 40e9, true);
  GenTimeBreakdown piped =
      perf_.GenerateTime({4, 1}, Devices(4), 128, 1024, 1024, 40e9, true);
  EXPECT_GT(piped.total(), flat.total());
}

TEST_F(PerfModelTest, WaveCountIsMonotoneInKvBudget) {
  int previous_waves = 1 << 30;
  for (double budget : {2e9, 8e9, 20e9, 60e9}) {
    GenTimeBreakdown breakdown =
        perf_.GenerateTime({1, 2}, Devices(2), 256, 1024, 1024, budget, true);
    EXPECT_LE(breakdown.waves, previous_waves) << budget;
    previous_waves = breakdown.waves;
  }
}

TEST_F(PerfModelTest, KvBytesShardedByGenConfig) {
  EXPECT_DOUBLE_EQ(perf_.KvBytesPerTokenPerGpu({1, 1}),
                   2.0 * perf_.KvBytesPerTokenPerGpu({1, 2}));
  EXPECT_DOUBLE_EQ(perf_.KvBytesPerTokenPerGpu({1, 1}),
                   2.0 * perf_.KvBytesPerTokenPerGpu({2, 1}));
}

TEST_F(PerfModelTest, MemoryAccountants) {
  // Train memory grows with tokens; infer memory is just the param shard.
  EXPECT_GT(perf_.TrainMemoryPerGpu({1, 2, 8}, 8192, 4),
            perf_.TrainMemoryPerGpu({1, 2, 8}, 1024, 4));
  EXPECT_DOUBLE_EQ(perf_.InferMemoryPerGpu({1, 2, 8}), perf_.param_bytes() / 2.0);
  EXPECT_DOUBLE_EQ(perf_.GenParamBytesPerGpu({2, 2}), perf_.param_bytes() / 4.0);
  ZeroConfig zero{ZeroStage::kStage3, 16};
  EXPECT_LT(perf_.ZeroTrainMemoryPerGpu(zero, 1024),
            18.0 * perf_.num_params());  // Sharded.
}

}  // namespace
}  // namespace hybridflow
