#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "src/nn/adam.h"
#include "src/nn/policy_net.h"
#include "src/tensor/ops.h"
#include "src/tensor/parallel.h"

namespace hybridflow {
namespace {

PolicyNetConfig SmallConfig(bool scalar = false) {
  PolicyNetConfig config;
  config.vocab_size = 8;
  config.context_window = 3;
  config.embed_dim = 8;
  config.hidden_dim = 16;
  config.scalar_head = scalar;
  return config;
}

TEST(PolicyNetTest, ForwardShapes) {
  Rng rng(1);
  PolicyNet net(SmallConfig(), rng);
  std::vector<std::vector<int64_t>> contexts = {{0, 1, 2}, {3, 4, 5}};
  Tensor logits = net.Forward(contexts);
  EXPECT_EQ(logits.dim(0), 2);
  EXPECT_EQ(logits.dim(1), 8);
}

TEST(PolicyNetTest, ScalarHeadShape) {
  Rng rng(1);
  PolicyNet net(SmallConfig(/*scalar=*/true), rng);
  Tensor values = net.Forward({{0, 1, 2}, {3, 4, 5}, {6, 7, 0}});
  EXPECT_EQ(values.ndim(), 1);
  EXPECT_EQ(values.dim(0), 3);
}

TEST(PolicyNetTest, LogProbIsConsistentWithForward) {
  Rng rng(2);
  PolicyNet net(SmallConfig(), rng);
  std::vector<std::vector<int64_t>> contexts = {{1, 2, 3}};
  Tensor logits = net.Forward(contexts);
  Tensor log_probs = LogSoftmax(logits);
  Tensor picked = net.LogProb(contexts, {5});
  EXPECT_NEAR(picked.at(0), log_probs.at(0, 5), 1e-5);
}

TEST(PolicyNetTest, SampleRespectsTemperature) {
  Rng init(3);
  PolicyNet net(SmallConfig(), init);
  std::vector<std::vector<int64_t>> contexts(200, {1, 2, 3});
  Rng hot_rng(4);
  Rng cold_rng(4);
  std::vector<int64_t> hot = net.Sample(contexts, 10.0, hot_rng);
  std::vector<int64_t> cold = net.Sample(contexts, 0.05, cold_rng);
  // Cold sampling should concentrate on few tokens; hot should spread.
  std::set<int64_t> hot_set(hot.begin(), hot.end());
  std::set<int64_t> cold_set(cold.begin(), cold.end());
  EXPECT_GT(hot_set.size(), cold_set.size());
}

TEST(PolicyNetTest, GreedyIsDeterministicArgmax) {
  Rng rng(5);
  PolicyNet net(SmallConfig(), rng);
  std::vector<std::vector<int64_t>> contexts = {{0, 0, 1}, {2, 3, 4}};
  std::vector<int64_t> a = net.Greedy(contexts);
  std::vector<int64_t> b = net.Greedy(contexts);
  EXPECT_EQ(a, b);
  Tensor logits = net.Forward(contexts);
  for (size_t i = 0; i < contexts.size(); ++i) {
    for (int64_t j = 0; j < logits.dim(1); ++j) {
      EXPECT_LE(logits.at(static_cast<int64_t>(i), j),
                logits.at(static_cast<int64_t>(i), a[i]) + 1e-6);
    }
  }
}

TEST(PolicyNetTest, CopyFromMakesNetsIdentical) {
  Rng rng_a(6);
  Rng rng_b(7);
  PolicyNet a(SmallConfig(), rng_a);
  PolicyNet b(SmallConfig(), rng_b);
  b.CopyFrom(a);
  std::vector<std::vector<int64_t>> contexts = {{1, 2, 3}};
  Tensor la = a.Forward(contexts);
  Tensor lb = b.Forward(contexts);
  for (int64_t j = 0; j < la.dim(1); ++j) {
    EXPECT_FLOAT_EQ(la.at(0, j), lb.at(0, j));
  }
}

TEST(PolicyNetTest, ParametersAreAllTrainable) {
  Rng rng(8);
  PolicyNet net(SmallConfig(), rng);
  for (const Tensor& param : net.Parameters()) {
    EXPECT_TRUE(param.requires_grad());
  }
  // embedding + K=3 position weights + hidden bias + out weight + out bias.
  EXPECT_EQ(net.Parameters().size(), 7u);
}

TEST(AdamTest, MinimizesQuadratic) {
  Tensor x = Tensor::FromData({2}, {5.0f, -3.0f}, true);
  AdamConfig config;
  config.lr = 0.1f;
  config.grad_clip = 0.0f;
  Adam adam({x}, config);
  for (int step = 0; step < 300; ++step) {
    Tensor loss = Sum(Square(x));
    loss.Backward();
    adam.Step();
  }
  EXPECT_NEAR(x.at(0), 0.0f, 0.05f);
  EXPECT_NEAR(x.at(1), 0.0f, 0.05f);
  EXPECT_EQ(adam.steps(), 300);
}

TEST(AdamTest, GradClipBoundsUpdates) {
  Tensor x = Tensor::FromData({1}, {0.0f}, true);
  AdamConfig config;
  config.lr = 1.0f;
  config.grad_clip = 0.001f;
  Adam adam({x}, config);
  Tensor loss = Scale(Sum(x), 1e6f);  // Huge gradient.
  loss.Backward();
  adam.Step();
  // Adam normalizes by sqrt(v), so the step is ~lr regardless; clip keeps
  // moments sane.
  EXPECT_LT(std::abs(x.at(0)), 1.5f);
}

TEST(AdamTest, StepZeroesGradients) {
  Tensor x = Tensor::FromData({1}, {1.0f}, true);
  Adam adam({x});
  Sum(Square(x)).Backward();
  adam.Step();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

// The parallel Adam update must be bitwise invariant to tensor.threads
// (each element is owned by exactly one chunk — docs/KERNELS.md).
TEST(AdamKernelDeterminismTest, UpdatesBitwiseInvariantAcrossThreads) {
  std::vector<std::vector<float>> runs;
  for (int threads : {1, 2, 8}) {
    SetTensorThreads(threads);
    Rng rng(31);
    Tensor x = Tensor::Randn({64, 200}, rng, 1.0f);
    Tensor target = Tensor::Randn({64, 200}, rng, 1.0f, /*requires_grad=*/false);
    AdamConfig config;
    config.lr = 0.05f;
    Adam adam({x}, config);
    for (int step = 0; step < 5; ++step) {
      Sum(Square(Sub(x, target))).Backward();
      adam.Step();
    }
    runs.push_back(x.data());
  }
  SetTensorThreads(0);
  for (size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[0].size(), runs[run].size());
    EXPECT_EQ(std::memcmp(runs[0].data(), runs[run].data(), runs[0].size() * sizeof(float)), 0)
        << "run " << run;
  }
}

TEST(PolicyNetTest, LearnsSupervisedNextToken) {
  // The net should be able to learn "next token = (last token + 1) % V"
  // with enough Adam steps — this is exactly what PPO needs it to express.
  Rng rng(9);
  PolicyNetConfig config = SmallConfig();
  PolicyNet net(config, rng);
  AdamConfig adam_config;
  adam_config.lr = 0.02f;
  Adam adam(net.Parameters(), adam_config);
  Rng data_rng(10);
  for (int step = 0; step < 400; ++step) {
    std::vector<std::vector<int64_t>> contexts;
    std::vector<int64_t> targets;
    for (int i = 0; i < 32; ++i) {
      const int64_t last = data_rng.UniformInt(0, config.vocab_size - 1);
      contexts.push_back({data_rng.UniformInt(0, config.vocab_size - 1),
                          data_rng.UniformInt(0, config.vocab_size - 1), last});
      targets.push_back((last + 1) % config.vocab_size);
    }
    Tensor loss = Neg(Mean(net.LogProb(contexts, targets)));
    loss.Backward();
    adam.Step();
  }
  // Evaluate accuracy.
  int correct = 0;
  for (int64_t last = 0; last < config.vocab_size; ++last) {
    std::vector<int64_t> prediction = net.Greedy({{0, 0, last}});
    if (prediction[0] == (last + 1) % config.vocab_size) {
      correct += 1;
    }
  }
  EXPECT_GE(correct, 6) << "net failed to learn the successor function";
}

}  // namespace
}  // namespace hybridflow
