// Negative tests for the lock-order deadlock detector
// (src/analysis/lock_graph.h): a seeded ABBA inversion must be reported
// as a potential deadlock naming both mutexes, cycles report once per
// closing edge, and OnDestroy unlinks a node so address reuse cannot
// produce phantom cycles. These tests run the inversions *sequentially*
// (never both orders in flight at once), so they can never deadlock for
// real — the whole point of the graph is that the potential is visible
// without the interleaving that trips it.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/lock_graph.h"
#include "src/common/annotations.h"
#include "src/common/thread_pool.h"

namespace hybridflow {
namespace {

#if HF_SYNC_CONTRACTS_ENABLED

class LockGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LockGraph::Global().SetStderrReports(false);
    LockGraph::Global().Reset();
  }
  void TearDown() override {
    LockGraph::Global().Reset();
    LockGraph::Global().SetStderrReports(true);
  }
};

TEST_F(LockGraphTest, AbbaInversionReportsPotentialDeadlock) {
  Mutex a("abba_a");
  Mutex b("abba_b");
  {
    MutexLock hold_a(a);
    MutexLock then_b(b);  // Edge a -> b.
  }
  ASSERT_EQ(LockGraph::Global().ReportCount(), 0u) << "one order alone is legal";
  {
    MutexLock hold_b(b);
    MutexLock then_a(a);  // Edge b -> a closes the cycle.
  }
  ASSERT_EQ(LockGraph::Global().ReportCount(), 1u);
  const LockCycleReport report = LockGraph::Global().Reports().front();
  EXPECT_NE(report.message.find("POTENTIAL DEADLOCK"), std::string::npos);
  EXPECT_NE(report.message.find("abba_a"), std::string::npos);
  EXPECT_NE(report.message.find("abba_b"), std::string::npos);
  // The cycle starts and ends at the same mutex: {x, y, x}.
  ASSERT_EQ(report.cycle.size(), 3u);
  EXPECT_EQ(report.cycle.front(), report.cycle.back());
}

TEST_F(LockGraphTest, CycleReportedOncePerEdge) {
  Mutex a("once_a");
  Mutex b("once_b");
  for (int round = 0; round < 3; ++round) {
    {
      MutexLock hold_a(a);
      MutexLock then_b(b);
    }
    {
      MutexLock hold_b(b);
      MutexLock then_a(a);
    }
  }
  EXPECT_EQ(LockGraph::Global().ReportCount(), 1u)
      << "re-running the same inversion must not re-report";
}

TEST_F(LockGraphTest, ThreeLockCycleNamesAllThree) {
  // Drive the graph directly with opaque keys: a -> b -> c -> a.
  LockGraph& graph = LockGraph::Global();
  int a = 0;
  int b = 0;
  int c = 0;
  graph.OnAcquire(&a, "ring_a");
  graph.OnAcquire(&b, "ring_b");
  graph.OnRelease(&b);
  graph.OnRelease(&a);
  graph.OnAcquire(&b, "ring_b");
  graph.OnAcquire(&c, "ring_c");
  graph.OnRelease(&c);
  graph.OnRelease(&b);
  EXPECT_EQ(graph.ReportCount(), 0u);
  graph.OnAcquire(&c, "ring_c");
  graph.OnAcquire(&a, "ring_a");  // Closes c -> a, completing the ring.
  graph.OnRelease(&a);
  graph.OnRelease(&c);
  ASSERT_EQ(graph.ReportCount(), 1u);
  const LockCycleReport report = graph.Reports().front();
  EXPECT_EQ(report.cycle.size(), 4u);  // {x, y, z, x}.
  EXPECT_NE(report.message.find("ring_a"), std::string::npos);
  EXPECT_NE(report.message.find("ring_b"), std::string::npos);
  EXPECT_NE(report.message.find("ring_c"), std::string::npos);
}

TEST_F(LockGraphTest, SelfRecursionReported) {
  LockGraph& graph = LockGraph::Global();
  int a = 0;
  graph.OnAcquire(&a, "recursive");
  graph.OnAcquire(&a, "recursive");  // Re-acquiring a held mutex self-deadlocks.
  ASSERT_EQ(graph.ReportCount(), 1u);
  EXPECT_NE(graph.Reports().front().message.find("recursive"), std::string::npos);
  graph.OnRelease(&a);
  graph.OnRelease(&a);
}

TEST_F(LockGraphTest, DestroyRemovesNodeAndEdges) {
  LockGraph& graph = LockGraph::Global();
  int a = 0;
  int b = 0;
  graph.OnAcquire(&a, "gone_a");
  graph.OnAcquire(&b, "gone_b");
  graph.OnRelease(&b);
  graph.OnRelease(&a);
  EXPECT_EQ(graph.EdgeCount(), 1u);
  graph.OnDestroy(&b);
  EXPECT_EQ(graph.EdgeCount(), 0u);
  // The address can be reused by a fresh mutex; the reverse order is now a
  // fresh edge, not a cycle with the dead node's history.
  graph.OnAcquire(&b, "fresh_b");
  graph.OnAcquire(&a, "gone_a");
  graph.OnRelease(&a);
  graph.OnRelease(&b);
  EXPECT_EQ(graph.ReportCount(), 0u);
  graph.OnDestroy(&a);
  graph.OnDestroy(&b);
}

TEST_F(LockGraphTest, EdgesMergeAcrossThreads) {
  // Thread 1 sees a -> b, thread 2 sees b -> a; the cycle only exists in
  // the merged process-wide graph. Tasks run sequentially (.get() between
  // them) so the orders are never concurrently in flight.
  Mutex a("xthread_a");
  Mutex b("xthread_b");
  ThreadPool::Shared()
      .Submit([&] {
        MutexLock hold_a(a);
        MutexLock then_b(b);
      })
      .get();
  EXPECT_EQ(LockGraph::Global().ReportCount(), 0u);
  ThreadPool::Shared()
      .Submit([&] {
        MutexLock hold_b(b);
        MutexLock then_a(a);
      })
      .get();
  ASSERT_EQ(LockGraph::Global().ReportCount(), 1u);
  const std::string message = LockGraph::Global().Reports().front().message;
  EXPECT_NE(message.find("xthread_a"), std::string::npos);
  EXPECT_NE(message.find("xthread_b"), std::string::npos);
}

TEST_F(LockGraphTest, ConsistentOrderIsNotFlagged) {
  Mutex outer("nested_outer");
  Mutex inner("nested_inner");
  for (int round = 0; round < 4; ++round) {
    MutexLock hold_outer(outer);
    MutexLock hold_inner(inner);
  }
  EXPECT_EQ(LockGraph::Global().ReportCount(), 0u);
  EXPECT_GE(LockGraph::Global().NodeCount(), 2u);
  EXPECT_GE(LockGraph::Global().EdgeCount(), 1u);
}

#else  // !HF_SYNC_CONTRACTS_ENABLED

TEST(LockGraphTest, SkippedWhenContractsCompiledOut) {
  GTEST_SKIP() << "HF_SYNC_CONTRACTS disabled in this build";
}

#endif  // HF_SYNC_CONTRACTS_ENABLED

}  // namespace
}  // namespace hybridflow
