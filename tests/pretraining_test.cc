#include <gtest/gtest.h>

#include "src/rlhf/pretraining.h"

namespace hybridflow {
namespace {

PolicyNetConfig ActorNet(const AlignmentTask& task) {
  PolicyNetConfig config;
  config.vocab_size = task.vocab_size;
  config.context_window = 4;
  config.embed_dim = 16;
  config.hidden_dim = 32;
  return config;
}

PolicyNetConfig RewardNet(const AlignmentTask& task) {
  PolicyNetConfig config = ActorNet(task);
  config.scalar_head = true;
  return config;
}

TEST(SftTest, LossDropsAndRuleIsLearned) {
  AlignmentTask task;
  Rng rng(1);
  PolicyNet net(ActorNet(task), rng);
  SftConfig config;
  config.steps = 300;
  config.lr = 0.02f;
  SftReport report = RunSft(&net, task, config);
  EXPECT_LT(report.final_loss, report.initial_loss);
  EXPECT_GE(report.greedy_accuracy, 0.8);
}

TEST(SftTest, RejectsScalarHeadNets) {
  AlignmentTask task;
  Rng rng(2);
  PolicyNet scalar(RewardNet(task), rng);
  EXPECT_DEATH(RunSft(&scalar, task, SftConfig()), "");
}

TEST(ScoreResponseTest, IsMeanOfPerPositionScores) {
  AlignmentTask task;
  Rng rng(3);
  PolicyNet reward(RewardNet(task), rng);
  std::vector<int64_t> prompt = {1, 2, 3, 4};
  std::vector<int64_t> response = {5, 6};
  Tensor score = ScoreResponse(reward, prompt, response);
  EXPECT_EQ(score.size(), 1);
  // Differentiable: backward reaches the reward net parameters.
  score.Backward();
  double grad_mass = 0.0;
  for (float g : reward.Parameters()[0].grad()) {
    grad_mass += std::abs(g);
  }
  EXPECT_GT(grad_mass, 0.0);
}

TEST(RewardTrainingTest, LearnsToRankResponses) {
  AlignmentTask task;
  Rng rng(4);
  PolicyNet reward(RewardNet(task), rng);
  RewardTrainingConfig config;
  config.steps = 200;
  config.pairs_per_step = 24;
  config.lr = 0.02f;
  RewardTrainingReport report = TrainRewardModel(&reward, task, config);
  EXPECT_LT(report.final_loss, report.initial_loss);
  // Ground-truth rewards are dominated by the toxic-token penalty and the
  // coherence rule; the mean-score model should rank well above chance.
  EXPECT_GE(report.ranking_accuracy, 0.7)
      << "reward model failed to learn preferences (loss " << report.initial_loss << " -> "
      << report.final_loss << ")";
}

TEST(RewardTrainingTest, UntrainedModelRanksNearChance) {
  AlignmentTask task;
  Rng rng(5);
  PolicyNet reward(RewardNet(task), rng);
  RewardTrainingConfig config;
  config.steps = 0;  // Evaluation only.
  RewardTrainingReport report = TrainRewardModel(&reward, task, config);
  EXPECT_LT(report.ranking_accuracy, 0.75);
  EXPECT_GT(report.ranking_accuracy, 0.25);
}

}  // namespace
}  // namespace hybridflow
