#include <gtest/gtest.h>

#include <cstdio>

#include "src/baselines/system_builder.h"
#include "src/ckpt/checkpoint.h"
#include "src/ckpt/trainer.h"

namespace hybridflow {
namespace {

PolicyNetConfig SmallNet() {
  PolicyNetConfig config;
  config.vocab_size = 8;
  config.context_window = 3;
  config.embed_dim = 8;
  config.hidden_dim = 16;
  return config;
}

TEST(ModelSnapshotTest, RoundTripRestoresExactWeights) {
  Rng rng_a(1);
  Rng rng_b(2);
  PolicyNet original(SmallNet(), rng_a);
  PolicyNet other(SmallNet(), rng_b);
  ModelSnapshot snapshot = ModelSnapshot::FromNet(original);
  ASSERT_TRUE(snapshot.RestoreInto(&other));
  Tensor la = original.Forward({{1, 2, 3}});
  Tensor lb = other.Forward({{1, 2, 3}});
  for (int64_t j = 0; j < la.dim(1); ++j) {
    EXPECT_FLOAT_EQ(la.at(0, j), lb.at(0, j));
  }
}

TEST(ModelSnapshotTest, ChecksumDetectsSilentCorruption) {
  Rng rng(3);
  PolicyNet net(SmallNet(), rng);
  ModelSnapshot snapshot = ModelSnapshot::FromNet(net);
  EXPECT_TRUE(snapshot.Verify());
  snapshot.parameters[0][0] += 1e-3f;
  EXPECT_FALSE(snapshot.Verify());
  EXPECT_FALSE(snapshot.RestoreInto(&net));
}

TEST(ModelSnapshotTest, ShapeMismatchRejected) {
  Rng rng(4);
  PolicyNet net(SmallNet(), rng);
  PolicyNetConfig bigger = SmallNet();
  bigger.hidden_dim = 32;
  PolicyNet other(bigger, rng);
  ModelSnapshot snapshot = ModelSnapshot::FromNet(net);
  EXPECT_FALSE(snapshot.RestoreInto(&other));
}

TEST(CheckpointManagerTest, KeepsBoundedHistoryAndRestoresLatest) {
  Rng rng(5);
  PolicyNet net(SmallNet(), rng);
  CheckpointManager manager(/*max_snapshots=*/2);
  manager.Capture(1, 10, {{"actor", &net}});
  net.Parameters()[0].data()[0] = 42.0f;
  manager.Capture(2, 20, {{"actor", &net}});
  net.Parameters()[0].data()[0] = 43.0f;
  manager.Capture(3, 30, {{"actor", &net}});
  EXPECT_EQ(manager.LatestIteration(), 3);

  net.Parameters()[0].data()[0] = 0.0f;
  int64_t iteration = 0;
  int64_t position = 0;
  ASSERT_TRUE(manager.Restore({{"actor", &net}}, &iteration, &position));
  EXPECT_EQ(iteration, 3);
  EXPECT_EQ(position, 30);
  EXPECT_FLOAT_EQ(net.Parameters()[0].data()[0], 43.0f);
}

TEST(CheckpointManagerTest, FallsBackPastCorruptedSnapshot) {
  Rng rng(6);
  PolicyNet net(SmallNet(), rng);
  CheckpointManager manager(3);
  manager.Capture(1, 1, {{"actor", &net}});
  net.Parameters()[0].data()[0] = 7.0f;
  manager.Capture(2, 2, {{"actor", &net}});
  manager.CorruptLatestForTesting();
  int64_t iteration = 0;
  ASSERT_TRUE(manager.Restore({{"actor", &net}}, &iteration, nullptr));
  EXPECT_EQ(iteration, 1);  // Redundancy-based recovery to the older one.
}

TEST(CheckpointManagerTest, RestoreFailsWithNoCheckpoints) {
  Rng rng(7);
  PolicyNet net(SmallNet(), rng);
  CheckpointManager manager;
  EXPECT_FALSE(manager.Restore({{"actor", &net}}, nullptr, nullptr));
}

TEST(CheckpointManagerTest, DiskRoundTrip) {
  Rng rng(8);
  PolicyNet net(SmallNet(), rng);
  CheckpointManager manager;
  manager.Capture(5, 50, {{"actor", &net}});
  const std::string path = "/tmp/hf_ckpt_test.bin";
  ASSERT_TRUE(manager.SaveToFile(path));

  CheckpointManager loaded;
  ASSERT_TRUE(loaded.LoadFromFile(path));
  EXPECT_EQ(loaded.LatestIteration(), 5);
  Rng rng2(9);
  PolicyNet other(SmallNet(), rng2);
  int64_t iteration = 0;
  ASSERT_TRUE(loaded.Restore({{"actor", &other}}, &iteration, nullptr));
  Tensor la = net.Forward({{1, 2, 3}});
  Tensor lb = other.Forward({{1, 2, 3}});
  EXPECT_FLOAT_EQ(la.at(0, 0), lb.at(0, 0));
  std::remove(path.c_str());
}

TEST(CheckpointManagerTest, LoadRejectsGarbageFile) {
  const std::string path = "/tmp/hf_ckpt_garbage.bin";
  FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a checkpoint", f);
  std::fclose(f);
  CheckpointManager manager;
  EXPECT_FALSE(manager.LoadFromFile(path));
  std::remove(path.c_str());
}

// --- Fault-tolerant trainer loop ----------------------------------------------

SystemBuildConfig TrainerSystem() {
  SystemBuildConfig config;
  config.system = RlhfSystem::kHybridFlow;
  config.algorithm = RlhfAlgorithm::kPpo;
  config.num_gpus = 8;
  config.real_compute = true;
  config.real_batch = 16;
  config.seed = 99;
  config.workload.global_batch = 64;
  return config;
}

TEST(RlhfTrainerTest, RunsToCompletionAndCheckpoints) {
  RlhfSystemInstance system = BuildSystem(TrainerSystem());
  ASSERT_TRUE(system.feasible);
  RlhfModels models;
  models.actor = system.actor.get();
  models.critic = system.critic.get();
  models.reference = system.reference.get();
  models.reward = system.reward.get();
  RlhfTrainer trainer(system.program.get(), models);
  TrainerConfig config;
  config.total_iterations = 6;
  config.checkpoint_interval = 2;
  TrainerReport report = trainer.Run(config);
  EXPECT_EQ(report.final_iteration, 6);
  EXPECT_EQ(report.failures_recovered, 0);
  EXPECT_EQ(report.checkpoints_taken, 1 + 3);  // Initial + every 2 of 6.
  EXPECT_EQ(report.history.size(), 6u);
}

TEST(RlhfTrainerTest, RecoversFromInjectedFailure) {
  RlhfSystemInstance system = BuildSystem(TrainerSystem());
  ASSERT_TRUE(system.feasible);
  RlhfModels models;
  models.actor = system.actor.get();
  models.critic = system.critic.get();
  models.reference = system.reference.get();
  models.reward = system.reward.get();
  RlhfTrainer trainer(system.program.get(), models);
  TrainerConfig config;
  config.total_iterations = 6;
  config.checkpoint_interval = 2;
  config.fail_after_iteration = 5;  // Rolls back to the iteration-4 snapshot.
  TrainerReport report = trainer.Run(config);
  EXPECT_EQ(report.failures_recovered, 1);
  EXPECT_EQ(report.final_iteration, 6);
  // The lost iteration was re-run: history has 6 + 1 entries.
  EXPECT_EQ(report.history.size(), 7u);
}

TEST(ChecksumTest, IsOrderSensitive) {
  EXPECT_NE(ChecksumFloats({{1.0f, 2.0f}}), ChecksumFloats({{2.0f, 1.0f}}));
  EXPECT_EQ(ChecksumFloats({{1.0f, 2.0f}}), ChecksumFloats({{1.0f, 2.0f}}));
  EXPECT_NE(ChecksumFloats({{}}), ChecksumFloats({{0.0f}}));
}

}  // namespace
}  // namespace hybridflow
