// Cross-cutting edge cases and lifecycle invariants that don't belong to a
// single module's suite.
#include <gtest/gtest.h>

#include "src/baselines/system_builder.h"
#include "src/sim/trace_export.h"

namespace hybridflow {
namespace {

// --- Memory lifecycle -----------------------------------------------------------

TEST(WorkerLifecycleTest, DestructionReleasesRegisteredMemory) {
  Controller controller(ClusterSpec::WithGpus(4));
  auto pool = controller.CreatePoolRange("pool", 0, 4);
  RealComputeOptions real;
  real.enabled = false;
  {
    WorkerGroupOptions options;
    options.name = "reward";
    options.model = ModelSpec::Llama7B();
    options.scalar_head = true;
    options.train_cfg = {1, 2, 2};
    RewardWorkerGroup reward(options, pool, &controller, real, RewardSource::kRuleReward);
    EXPECT_GT(controller.cluster().memory(0).used(), 0.0);
  }
  EXPECT_DOUBLE_EQ(controller.cluster().memory(0).used(), 0.0);
}

TEST(WorkerLifecycleTest, ZeroBackendRegistersShardedState) {
  Controller controller(ClusterSpec::WithGpus(8));
  auto pool = controller.CreatePoolRange("pool", 0, 8);
  RealComputeOptions real;
  real.enabled = false;
  WorkerGroupOptions options;
  options.name = "critic";
  options.model = ModelSpec::Llama7B();
  options.scalar_head = true;
  options.trainable = true;
  options.backend = WorkerBackend::kZero;
  options.train_cfg = {1, 1, 8};
  CriticWorkerGroup critic(options, pool, &controller, real);
  const double per_gpu = controller.cluster().memory(0).used();
  // ZeRO-3: 18 bytes/param / 8.
  EXPECT_NEAR(per_gpu, 18.0 * ModelSpec::Llama7B().NumParamsScalarHead() / 8.0, 1e9);
  EXPECT_LT(per_gpu, 18.0 * ModelSpec::Llama7B().NumParamsScalarHead() / 4.0);
}

// --- Engine edge cases -----------------------------------------------------------

TEST(HybridEngineEdgeTest, SharedModeReplicaDevicesAreModelBlocks) {
  ClusterSpec cluster = ClusterSpec::WithGpus(8);
  std::vector<DeviceId> devices = {0, 1, 2, 3, 4, 5, 6, 7};
  HybridEngine engine(ModelSpec::Llama7B(), {2, 2, 2}, {2, 2}, ActorEngineMode::kShared,
                      cluster, devices);
  ASSERT_EQ(engine.NumGenReplicas(), 2);
  EXPECT_EQ(engine.GenReplicaDevices(0), (std::vector<DeviceId>{0, 1, 2, 3}));
  EXPECT_EQ(engine.GenReplicaDevices(1), (std::vector<DeviceId>{4, 5, 6, 7}));
}

TEST(HybridEngineEdgeTest, IdentityRegroupingHasZeroCommEvenVanilla) {
  // gen == train sizes: d_g = 1, nothing to gather under either grouping.
  ClusterSpec cluster = ClusterSpec::WithGpus(8);
  std::vector<DeviceId> devices = {0, 1, 2, 3, 4, 5, 6, 7};
  for (ActorEngineMode mode : {ActorEngineMode::kHybridFlow, ActorEngineMode::kHybridFlowV}) {
    HybridEngine engine(ModelSpec::Llama7B(), {1, 4, 2}, {1, 4}, mode, cluster, devices);
    EXPECT_DOUBLE_EQ(engine.TrainToGenTransition().comm_bytes_per_gpu, 0.0)
        << ActorEngineModeName(mode);
  }
}

// --- Topology / cluster edge cases --------------------------------------------------

TEST(ClusterEdgeTest, NonWholeNodeMultiNodeClusterIsRejected) {
  EXPECT_DEATH(ClusterSpec::WithGpus(12), "whole nodes");
}

TEST(ClusterEdgeTest, SubNodeClusterIsOneNode) {
  ClusterSpec spec = ClusterSpec::WithGpus(3);
  EXPECT_EQ(spec.num_nodes, 1);
  EXPECT_EQ(spec.gpus_per_node, 3);
}

// --- DataBatch error handling ---------------------------------------------------------

TEST(DataBatchEdgeTest, MismatchedRowCountsAreFatal) {
  DataBatch batch;
  batch.SetTokens("prompts", {{1}, {2}});
  EXPECT_DEATH(batch.SetFloat("scores", {{1.0f}}), "batch size");
}

TEST(DataBatchEdgeTest, SliceBoundsChecked) {
  DataBatch batch;
  batch.SetTokens("prompts", {{1}, {2}});
  EXPECT_DEATH(batch.Slice(0, 3), "");
  EXPECT_DEATH(batch.Slice(2, 1), "");
}

// --- Execution-pattern structure (Table 1 semantics) -----------------------------------

TEST(ExecutionPatternTest, OpenRlhfNonActorPoolsIdleDuringGeneration) {
  SystemBuildConfig config;
  config.system = RlhfSystem::kOpenRlhf;
  config.num_gpus = 16;
  config.real_compute = false;
  RlhfSystemInstance system = BuildSystem(config);
  ASSERT_TRUE(system.feasible);
  system.RunIteration();
  // Find the generation span; assert the critic's devices run nothing that
  // overlaps it (they must wait for the experience batch).
  const auto& trace = system.controller->cluster().trace();
  const TraceSpan* generate = nullptr;
  for (const TraceSpan& span : trace) {
    if (span.category == "generate") {
      generate = &span;
      break;
    }
  }
  ASSERT_NE(generate, nullptr);
  const std::vector<DeviceId>& critic_devices = system.critic->pool().devices();
  for (const TraceSpan& span : trace) {
    bool on_critic = false;
    for (DeviceId device : span.devices) {
      for (DeviceId critic_device : critic_devices) {
        on_critic = on_critic || device == critic_device;
      }
    }
    if (!on_critic) {
      continue;
    }
    const bool overlaps =
        span.start < generate->end - 1e-12 && generate->start < span.end - 1e-12;
    EXPECT_FALSE(overlaps) << span.name << " overlapped generation";
  }
}

TEST(ExecutionPatternTest, SplitPlacementOverlapsPreparationAcrossPools) {
  // NeMo: actor+ref on one half, critic+reward on the other. Reference
  // inference and critic inference have no mutual dependency and disjoint
  // devices, so they overlap in the preparation stage (Fig. 3).
  SystemBuildConfig config;
  config.system = RlhfSystem::kNemoAligner;
  config.num_gpus = 16;
  config.real_compute = false;
  RlhfSystemInstance system = BuildSystem(config);
  ASSERT_TRUE(system.feasible);
  system.RunIteration();
  const TraceSpan* reference = nullptr;
  const TraceSpan* critic = nullptr;
  for (const TraceSpan& span : system.controller->cluster().trace()) {
    if (span.name == "reference.compute_ref_log_prob") {
      reference = &span;
    }
    if (span.name == "critic.compute_values") {
      critic = &span;
    }
  }
  ASSERT_NE(reference, nullptr);
  ASSERT_NE(critic, nullptr);
  const bool overlaps =
      reference->start < critic->end - 1e-12 && critic->start < reference->end - 1e-12;
  EXPECT_TRUE(overlaps) << "disjoint-pool preparation ops failed to overlap";
}

TEST(ExecutionPatternTest, ChromeTraceOfFullIterationIsWellFormed) {
  SystemBuildConfig config;
  config.system = RlhfSystem::kHybridFlow;
  config.num_gpus = 8;
  config.real_compute = false;
  RlhfSystemInstance system = BuildSystem(config);
  ASSERT_TRUE(system.feasible);
  system.RunIteration();
  const std::string json = TraceToChromeJson(system.controller->cluster());
  EXPECT_NE(json.find("actor.generate"), std::string::npos);
  EXPECT_NE(json.find("actor.update_actor"), std::string::npos);
  // Balanced braces at the ends.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.size() - 2], '}');
}

// --- Mapping internals ------------------------------------------------------------------

TEST(MappingEdgeTest, StandaloneAllocationsRespectMinimums) {
  // 70B standalone on 64: every model must receive enough GPUs for its
  // state; the trainables need far more than the inference models.
  DeviceMapper mapper(DataflowModels(RlhfAlgorithm::kPpo, ModelSpec::Llama70B(),
                                     ModelSpec::Llama70B()),
                      RlhfWorkloadSpec(), ClusterSpec::WithGpus(64));
  MappingResult result = mapper.Map(64, PlacementKind::kStandalone);
  ASSERT_TRUE(result.feasible);
  const int actor_set = result.SetOf("actor");
  const int ref_set = result.SetOf("reference");
  EXPECT_GE(result.sets[static_cast<size_t>(actor_set)].gpus,
            result.sets[static_cast<size_t>(ref_set)].gpus);
}

}  // namespace
}  // namespace hybridflow
