#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

#include "src/baselines/system_builder.h"
#include "src/common/thread_pool.h"

namespace hybridflow {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& future : futures) {
    future.get();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndicesOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(64, [&](int i) { hits[static_cast<size_t>(i)].fetch_add(1); });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForUsesMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> thread_ids;
  pool.ParallelFor(64, [&](int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mutex);
    thread_ids.insert(std::this_thread::get_id());
  });
  EXPECT_GT(thread_ids.size(), 1u);
}

TEST(ThreadPoolTest, ExceptionsPropagate) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(4,
                       [](int i) {
                         if (i == 2) {
                           throw std::runtime_error("boom");
                         }
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, DestructionDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); }).get();
    }
  }
  EXPECT_EQ(counter.load(), 16);
}

// The load-bearing property: parallel shard computation must not change the
// data-plane results between runs (per-(call, rank) RNG streams).
TEST(ParallelDispatchTest, RealComputeIsDeterministicAcrossRuns) {
  auto run_once = [] {
    SystemBuildConfig config;
    config.system = RlhfSystem::kHybridFlow;
    config.algorithm = RlhfAlgorithm::kPpo;
    config.num_gpus = 8;
    config.real_compute = true;
    config.real_batch = 32;
    config.seed = 77;
    config.workload.global_batch = 128;
    RlhfSystemInstance system = BuildSystem(config);
    EXPECT_TRUE(system.feasible);
    IterationMetrics last;
    for (int i = 0; i < 3; ++i) {
      last = system.RunIteration();
    }
    return last;
  };
  IterationMetrics a = run_once();
  IterationMetrics b = run_once();
  EXPECT_DOUBLE_EQ(a.mean_reward, b.mean_reward);
  EXPECT_DOUBLE_EQ(a.toxicity_rate, b.toxicity_rate);
  EXPECT_DOUBLE_EQ(a.actor_loss, b.actor_loss);
}

}  // namespace
}  // namespace hybridflow
