#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>

#include "src/baselines/system_builder.h"
#include "src/common/thread_pool.h"

namespace hybridflow {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& future : futures) {
    future.get();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, OnPoolThreadDetectsWorkers) {
  EXPECT_FALSE(ThreadPool::OnPoolThread());
  ThreadPool pool(2);
  std::atomic<int> on_pool{0};
  pool.ParallelFor(8, [&](int) {
    if (ThreadPool::OnPoolThread()) {
      on_pool.fetch_add(1);
    }
  });
  EXPECT_EQ(on_pool.load(), 8);
  EXPECT_FALSE(ThreadPool::OnPoolThread());
}

TEST(ThreadPoolTest, ParallelForCoversAllIndicesOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(64, [&](int i) { hits[static_cast<size_t>(i)].fetch_add(1); });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForUsesMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> thread_ids;
  pool.ParallelFor(64, [&](int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mutex);
    thread_ids.insert(std::this_thread::get_id());
  });
  EXPECT_GT(thread_ids.size(), 1u);
}

TEST(ThreadPoolTest, ExceptionsPropagate) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(4,
                       [](int i) {
                         if (i == 2) {
                           throw std::runtime_error("boom");
                         }
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstExceptionAndStaysUsable) {
  ThreadPool pool(4);
  // Every task throws; ParallelFor must surface the index-0 exception (the
  // first future waited on) and leave the pool healthy for further work.
  try {
    pool.ParallelFor(32, [](int i) {
      throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "task 0");
  }
  std::atomic<int> counter{0};
  pool.ParallelFor(16, [&counter](int) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPoolTest, SubmitFuturePropagatesException) {
  ThreadPool pool(2);
  std::future<void> future = pool.Submit([] { throw std::logic_error("submitted"); });
  EXPECT_THROW(future.get(), std::logic_error);
}

TEST(ThreadPoolTest, ConcurrentSubmitDuringParallelFor) {
  // Exercises the guarded queue from both directions at once: one thread
  // drives a large ParallelFor while another keeps submitting independent
  // tasks. Run under TSan via tools/check.sh.
  ThreadPool pool(4);
  std::atomic<int> parallel_hits{0};
  std::atomic<int> submit_hits{0};
  std::atomic<bool> parallel_done{false};

  std::vector<std::future<void>> submitted;
  std::mutex submitted_mutex;  // guards: `submitted` between the two drivers.
  std::future<void> submitter = std::async(std::launch::async, [&] {
    for (int i = 0; i < 4096 && (i == 0 || !parallel_done.load()); ++i) {
      std::future<void> f = pool.Submit([&submit_hits] { submit_hits.fetch_add(1); });
      {
        std::lock_guard<std::mutex> lock(submitted_mutex);
        submitted.push_back(std::move(f));
      }
      std::this_thread::sleep_for(std::chrono::microseconds(10));
    }
  });

  pool.ParallelFor(256, [&parallel_hits](int) {
    parallel_hits.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  });
  parallel_done.store(true);
  submitter.get();
  for (std::future<void>& f : submitted) {
    f.get();
  }
  EXPECT_EQ(parallel_hits.load(), 256);
  EXPECT_GT(submit_hits.load(), 0);
}

TEST(ThreadPoolTest, DestructionDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); }).get();
    }
  }
  EXPECT_EQ(counter.load(), 16);
}

// The load-bearing property: parallel shard computation must not change the
// data-plane results between runs (per-(call, rank) RNG streams).
TEST(ParallelDispatchTest, RealComputeIsDeterministicAcrossRuns) {
  auto run_once = [] {
    SystemBuildConfig config;
    config.system = RlhfSystem::kHybridFlow;
    config.algorithm = RlhfAlgorithm::kPpo;
    config.num_gpus = 8;
    config.real_compute = true;
    config.real_batch = 32;
    config.seed = 77;
    config.workload.global_batch = 128;
    RlhfSystemInstance system = BuildSystem(config);
    EXPECT_TRUE(system.feasible);
    IterationMetrics last;
    for (int i = 0; i < 3; ++i) {
      last = system.RunIteration();
    }
    return last;
  };
  IterationMetrics a = run_once();
  IterationMetrics b = run_once();
  EXPECT_DOUBLE_EQ(a.mean_reward, b.mean_reward);
  EXPECT_DOUBLE_EQ(a.toxicity_rate, b.toxicity_rate);
  EXPECT_DOUBLE_EQ(a.actor_loss, b.actor_loss);
}

}  // namespace
}  // namespace hybridflow
