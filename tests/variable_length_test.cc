// Variable-length (EOS-terminated) generation through the full worker
// pipeline: ragged responses, per-token columns, advantages, and updates.
#include <gtest/gtest.h>

#include "src/rlhf/advantage.h"
#include "src/workers/model_workers.h"
#include "src/workers/token_context.h"

namespace hybridflow {
namespace {

RealComputeOptions EosReal() {
  RealComputeOptions real;
  real.enabled = true;
  real.seed = 31;
  real.task = AlignmentTask{};
  real.task.prompt_len = 4;
  real.task.response_len = 8;
  real.task.use_eos = true;
  real.net.vocab_size = real.task.vocab_size;
  real.net.context_window = 3;
  real.net.embed_dim = 8;
  real.net.hidden_dim = 16;
  return real;
}

struct EosFixture : public ::testing::Test {
  EosFixture() : controller(ClusterSpec::WithGpus(4)) {
    pool = controller.CreatePoolRange("pool", 0, 4);
    WorkerGroupOptions options;
    options.name = "actor";
    options.model = ModelSpec::Llama7B();
    options.trainable = true;
    options.train_cfg = {1, 2, 2};
    ActorOptions actor_options;
    actor_options.gen = GenParallelConfig{1, 1};
    actor = std::make_unique<ActorWorkerGroup>(options, pool, &controller, EosReal(),
                                               actor_options);
    workload.global_batch = 64;
    workload.prompt_len = 128;
    workload.response_len = 128;
  }

  Controller controller;
  std::shared_ptr<ResourcePool> pool;
  std::unique_ptr<ActorWorkerGroup> actor;
  RlhfWorkloadSpec workload;
};

TEST_F(EosFixture, GenerationStopsAtEosOrMaxLength) {
  PromptDataset dataset(actor->real().task, 5);
  BatchFuture prompts = BatchFuture::Immediate(dataset.NextBatch(48));
  BatchFuture out = actor->GenerateSequences(prompts, workload);
  const AlignmentTask& task = actor->real().task;
  bool saw_short = false;
  for (const std::vector<int64_t>& response : out.data.Tokens("responses")) {
    ASSERT_GE(response.size(), 1u);
    ASSERT_LE(response.size(), static_cast<size_t>(task.response_len));
    // Any EOS must be terminal.
    for (size_t k = 0; k + 1 < response.size(); ++k) {
      EXPECT_NE(response[k], task.eos_token());
    }
    if (response.size() < static_cast<size_t>(task.response_len)) {
      saw_short = true;
      EXPECT_EQ(response.back(), task.eos_token());
    }
  }
  // With a random init over 16 tokens and 48 x 8 chances, EOS fires.
  EXPECT_TRUE(saw_short);
  // Log-prob rows mirror response lengths.
  const auto& log_probs = out.data.Float("log_probs");
  const auto& responses = out.data.Tokens("responses");
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(log_probs[i].size(), responses[i].size());
  }
}

TEST_F(EosFixture, RaggedBatchFlowsThroughAdvantagesAndUpdate) {
  PromptDataset dataset(actor->real().task, 6);
  BatchFuture prompts = BatchFuture::Immediate(dataset.NextBatch(32));
  BatchFuture experience = actor->GenerateSequences(prompts, workload);
  BatchFuture with_lp = actor->ComputeLogProb(experience, workload, "ref_log_probs");

  DataBatch data = with_lp.data;
  // Sample-level rewards via the task.
  DataBatch::FloatColumn rewards;
  const AlignmentTask& task = actor->real().task;
  for (int64_t i = 0; i < data.batch_size(); ++i) {
    rewards.push_back({task.SampleReward(data.Tokens("prompts")[static_cast<size_t>(i)],
                                         data.Tokens("responses")[static_cast<size_t>(i)])});
  }
  data.SetFloat("rewards", std::move(rewards));
  AdvantageConfig config;
  config.estimator = AdvantageEstimator::kRemax;
  DataBatch::FloatColumn baselines(static_cast<size_t>(data.batch_size()), {0.0f});
  data.SetFloat("baseline_rewards", std::move(baselines));
  DataBatch with_adv = ComputeAdvantages(data, config);
  // Advantage rows are ragged and match response lengths.
  for (int64_t i = 0; i < with_adv.batch_size(); ++i) {
    EXPECT_EQ(with_adv.Float("advantages")[static_cast<size_t>(i)].size(),
              with_adv.Tokens("responses")[static_cast<size_t>(i)].size());
  }
  // An update runs end-to-end on the ragged batch.
  BatchFuture minibatch;
  minibatch.data = with_adv;
  ActorUpdateConfig update;
  update.loss.kind = PolicyLossKind::kReinforce;
  BatchFuture out = actor->UpdateActor(minibatch, workload, update);
  ASSERT_TRUE(out.data.HasFloat("actor_loss"));
}

TEST(UnflattenRaggedTest, SplitsByLengths) {
  std::vector<float> flat = {1, 2, 3, 4, 5, 6};
  std::vector<std::vector<float>> rows = UnflattenRagged(flat, {1, 3, 0, 2});
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0], (std::vector<float>{1}));
  EXPECT_EQ(rows[1], (std::vector<float>{2, 3, 4}));
  EXPECT_TRUE(rows[2].empty());
  EXPECT_EQ(rows[3], (std::vector<float>{5, 6}));
}

TEST(AlignmentTaskEosTest, EosTokenIsNeutralAndPromptsAvoidIt) {
  AlignmentTask task;
  task.use_eos = true;
  EXPECT_FLOAT_EQ(task.TokenReward(3, task.eos_token()), 0.0f);
  EXPECT_FLOAT_EQ(task.TokenReward(3, 4), 1.0f);
  PromptDataset dataset(task, 7);
  DataBatch batch = dataset.NextBatch(32);
  for (const std::vector<int64_t>& prompt : batch.Tokens("prompts")) {
    for (int64_t token : prompt) {
      EXPECT_NE(token, task.eos_token());
      EXPECT_NE(token, task.toxic_token());
    }
  }
}

}  // namespace
}  // namespace hybridflow
