#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "src/parallel/parallel_config.h"
#include "src/parallel/process_groups.h"
#include "src/parallel/shard_range.h"
#include "src/parallel/zero_config.h"

namespace hybridflow {
namespace {

std::vector<DeviceId> Devices(int n) {
  std::vector<DeviceId> devices(static_cast<size_t>(n));
  std::iota(devices.begin(), devices.end(), 0);
  return devices;
}

// --- Config basics ----------------------------------------------------------

TEST(ParallelConfigTest, WorldSizeAndToString) {
  ParallelConfig cfg{2, 4, 3};
  EXPECT_EQ(cfg.world_size(), 24);
  EXPECT_EQ(cfg.model_parallel_size(), 8);
  EXPECT_EQ(cfg.ToString(), "2-4-3");
}

TEST(ParallelConfigTest, MicroDpSize) {
  // §5.1: d_g = p*t / (p_g*t_g).
  EXPECT_EQ(MicroDpSize({1, 8, 2}, {1, 2}), 4);
  EXPECT_EQ(MicroDpSize({2, 4, 1}, {1, 4}), 2);
  EXPECT_EQ(MicroDpSize({1, 4, 2}, {1, 4}), 1);
  EXPECT_FALSE(GenConfigCompatible({1, 4, 2}, {1, 3}));
  EXPECT_FALSE(GenConfigCompatible({1, 4, 2}, {2, 1}));
}

// --- Figure 8 worked example -------------------------------------------------
// Training 1-4-2 on 8 GPUs (G1..G8 = ranks 0..7).

class Figure8Test : public ::testing::Test {
 protected:
  ParallelConfig train_{1, 4, 2};
  ProcessGroups groups_{train_, Devices(8)};
  GenParallelConfig gen_{1, 2};  // 1-2-2-2 generation groups.
};

TEST_F(Figure8Test, TrainingGroupsMatchPaper) {
  // "the TP groups are [G1..G4], [G5..G8]"
  EXPECT_EQ(groups_.TpGroup(0), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(groups_.TpGroup(5), (std::vector<int>{4, 5, 6, 7}));
  // "the DP groups are [G1,G5], [G2,G6], [G3,G7], [G4,G8]"
  EXPECT_EQ(groups_.DpGroup(0), (std::vector<int>{0, 4}));
  EXPECT_EQ(groups_.DpGroup(1), (std::vector<int>{1, 5}));
  EXPECT_EQ(groups_.DpGroup(3), (std::vector<int>{3, 7}));
}

TEST_F(Figure8Test, VanillaGenerationGroupsMatchPaper) {
  // Fig 8(a): generation TP groups are consecutive pairs.
  auto method = GenGroupingMethod::kVanilla;
  EXPECT_EQ(groups_.GenTpGroup(0, gen_, method), (std::vector<int>{0, 1}));
  EXPECT_EQ(groups_.GenTpGroup(2, gen_, method), (std::vector<int>{2, 3}));
  EXPECT_EQ(groups_.GenTpGroup(4, gen_, method), (std::vector<int>{4, 5}));
  EXPECT_EQ(groups_.GenTpGroup(7, gen_, method), (std::vector<int>{6, 7}));
}

TEST_F(Figure8Test, ZeroRedundancyGroupsMatchPaper) {
  // Fig 8(b): "the generation TP groups are [G1,G3],[G2,G4],[G5,G7],[G6,G8];
  // and the micro DP groups are [G1,G2],[G3,G4],[G5,G6],[G7,G8]".
  auto method = GenGroupingMethod::kZeroRedundancy;
  EXPECT_EQ(groups_.GenTpGroup(0, gen_, method), (std::vector<int>{0, 2}));
  EXPECT_EQ(groups_.GenTpGroup(1, gen_, method), (std::vector<int>{1, 3}));
  EXPECT_EQ(groups_.GenTpGroup(4, gen_, method), (std::vector<int>{4, 6}));
  EXPECT_EQ(groups_.GenTpGroup(5, gen_, method), (std::vector<int>{5, 7}));
  EXPECT_EQ(groups_.MicroDpGroup(0, gen_, method), (std::vector<int>{0, 1}));
  EXPECT_EQ(groups_.MicroDpGroup(2, gen_, method), (std::vector<int>{2, 3}));
  EXPECT_EQ(groups_.MicroDpGroup(6, gen_, method), (std::vector<int>{6, 7}));
}

TEST_F(Figure8Test, VanillaHasNoOverlapOnMiddleRanks) {
  // "On some GPUs (e.g., G2, G3, G6, G7), there is no overlap between
  // training and generation model weights."
  for (int rank : {1, 2, 5, 6}) {
    ReshardMemoryProfile profile =
        ComputeReshardMemory(groups_, rank, gen_, GenGroupingMethod::kVanilla);
    EXPECT_DOUBLE_EQ(profile.overlap_fraction, 0.0) << "rank " << rank;
    EXPECT_GT(profile.redundant_fraction, 0.0);
  }
  // G1 and G4 do overlap.
  for (int rank : {0, 3}) {
    ReshardMemoryProfile profile =
        ComputeReshardMemory(groups_, rank, gen_, GenGroupingMethod::kVanilla);
    EXPECT_GT(profile.overlap_fraction, 0.0) << "rank " << rank;
  }
}

TEST_F(Figure8Test, ZeroRedundancyHasFullOverlapEverywhere) {
  for (int rank = 0; rank < 8; ++rank) {
    ReshardMemoryProfile profile =
        ComputeReshardMemory(groups_, rank, gen_, GenGroupingMethod::kZeroRedundancy);
    EXPECT_NEAR(profile.redundant_fraction, 0.0, 1e-12) << "rank " << rank;
    EXPECT_NEAR(profile.overlap_fraction, profile.train_fraction, 1e-12) << "rank " << rank;
  }
}

// --- Property sweeps over many configurations --------------------------------

struct SweepCase {
  ParallelConfig train;
  GenParallelConfig gen;
};

class GroupAlgebraSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(GroupAlgebraSweep, CoordinateRoundTrip) {
  const SweepCase& param = GetParam();
  ProcessGroups groups(param.train, Devices(param.train.world_size()));
  for (int rank = 0; rank < groups.world_size(); ++rank) {
    EXPECT_EQ(groups.RankOf(groups.TrainCoordsOf(rank)), rank);
  }
}

TEST_P(GroupAlgebraSweep, GenCoordinateRoundTripBothMethods) {
  const SweepCase& param = GetParam();
  ProcessGroups groups(param.train, Devices(param.train.world_size()));
  for (auto method : {GenGroupingMethod::kVanilla, GenGroupingMethod::kZeroRedundancy}) {
    for (int rank = 0; rank < groups.world_size(); ++rank) {
      GenCoords coords = groups.GenCoordsOf(rank, param.gen, method);
      EXPECT_EQ(groups.RankOfGen(coords, param.gen, method), rank);
    }
  }
}

TEST_P(GroupAlgebraSweep, GroupsPartitionTheWorld) {
  const SweepCase& param = GetParam();
  ProcessGroups groups(param.train, Devices(param.train.world_size()));
  for (auto method : {GenGroupingMethod::kVanilla, GenGroupingMethod::kZeroRedundancy}) {
    std::multiset<int> tp_members;
    std::multiset<int> micro_members;
    std::set<std::vector<int>> tp_groups;
    std::set<std::vector<int>> micro_groups;
    for (int rank = 0; rank < groups.world_size(); ++rank) {
      tp_groups.insert(groups.GenTpGroup(rank, param.gen, method));
      micro_groups.insert(groups.MicroDpGroup(rank, param.gen, method));
    }
    for (const std::vector<int>& group : tp_groups) {
      EXPECT_EQ(static_cast<int>(group.size()), param.gen.tp);
      tp_members.insert(group.begin(), group.end());
    }
    for (const std::vector<int>& group : micro_groups) {
      EXPECT_EQ(static_cast<int>(group.size()), MicroDpSize(param.train, param.gen));
      micro_members.insert(group.begin(), group.end());
    }
    EXPECT_EQ(static_cast<int>(tp_members.size()), groups.world_size());
    EXPECT_EQ(static_cast<int>(micro_members.size()), groups.world_size());
  }
}

TEST_P(GroupAlgebraSweep, ZeroRedundancyGroupingNeverWastesMemory) {
  // §5.3's key claim: the training shard is always a sub-rectangle of the
  // generation shard under the strided grouping.
  const SweepCase& param = GetParam();
  ProcessGroups groups(param.train, Devices(param.train.world_size()));
  for (int rank = 0; rank < groups.world_size(); ++rank) {
    TrainCoords train_coords = groups.TrainCoordsOf(rank);
    GenCoords gen_coords =
        groups.GenCoordsOf(rank, param.gen, GenGroupingMethod::kZeroRedundancy);
    EXPECT_TRUE(GenShard(gen_coords, param.gen).Contains(TrainShard(train_coords, param.train)))
        << "rank " << rank;
  }
}

TEST_P(GroupAlgebraSweep, MicroDpGroupsStayWithinModelBlock) {
  // Micro DP groups only regroup ranks of the same training DP replica.
  const SweepCase& param = GetParam();
  ProcessGroups groups(param.train, Devices(param.train.world_size()));
  for (auto method : {GenGroupingMethod::kVanilla, GenGroupingMethod::kZeroRedundancy}) {
    for (int rank = 0; rank < groups.world_size(); ++rank) {
      const int d = groups.TrainCoordsOf(rank).d;
      for (int member : groups.MicroDpGroup(rank, param.gen, method)) {
        EXPECT_EQ(groups.TrainCoordsOf(member).d, d);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, GroupAlgebraSweep,
    ::testing::Values(SweepCase{{1, 4, 2}, {1, 2}}, SweepCase{{1, 8, 2}, {1, 2}},
                      SweepCase{{1, 8, 1}, {1, 4}}, SweepCase{{2, 4, 2}, {1, 2}},
                      SweepCase{{2, 4, 2}, {2, 2}}, SweepCase{{4, 2, 2}, {2, 1}},
                      SweepCase{{2, 8, 4}, {1, 4}}, SweepCase{{4, 8, 4}, {2, 2}},
                      SweepCase{{1, 2, 1}, {1, 1}}, SweepCase{{8, 1, 2}, {2, 1}}));

// --- Shard geometry ----------------------------------------------------------

TEST(ShardRangeTest, FractionsMultiply) {
  ShardRange shard{{0.0, 0.5}, {0.25, 0.5}};
  EXPECT_DOUBLE_EQ(shard.Fraction(), 0.125);
}

TEST(ShardRangeTest, OverlapIsProductOfIntervalOverlaps) {
  ShardRange a{{0.0, 0.5}, {0.0, 0.5}};
  ShardRange b{{0.25, 0.75}, {0.25, 0.75}};
  EXPECT_DOUBLE_EQ(a.OverlapFraction(b), 0.0625);
  ShardRange disjoint{{0.5, 1.0}, {0.5, 1.0}};
  EXPECT_DOUBLE_EQ(a.OverlapFraction(disjoint), 0.0);
}

TEST(ShardRangeTest, TrainShardSize) {
  ParallelConfig cfg{2, 4, 3};
  ShardRange shard = TrainShard({1, 2, 0}, cfg);
  EXPECT_DOUBLE_EQ(shard.Fraction(), 1.0 / 8.0);
}

// --- ZeRO memory model --------------------------------------------------------

TEST(ZeroConfigTest, StagesProgressivelyShard) {
  const double params = 1e9;
  const double full = ZeroTrainStateBytesPerGpu(params, {ZeroStage::kNone, 8});
  const double s1 = ZeroTrainStateBytesPerGpu(params, {ZeroStage::kStage1, 8});
  const double s2 = ZeroTrainStateBytesPerGpu(params, {ZeroStage::kStage2, 8});
  const double s3 = ZeroTrainStateBytesPerGpu(params, {ZeroStage::kStage3, 8});
  EXPECT_GT(full, s1);
  EXPECT_GT(s1, s2);
  EXPECT_GT(s2, s3);
  EXPECT_DOUBLE_EQ(full, 18.0 * params);
  EXPECT_DOUBLE_EQ(s3, 18.0 * params / 8.0);
}

TEST(ZeroConfigTest, Stage3ShardsParams) {
  const double params = 1e9;
  EXPECT_DOUBLE_EQ(ZeroParamBytesPerGpu(params, {ZeroStage::kStage2, 8}), 2e9);
  EXPECT_DOUBLE_EQ(ZeroParamBytesPerGpu(params, {ZeroStage::kStage3, 8}), 0.25e9);
}

TEST(ZeroConfigTest, Stage3ExtraCommIsTwoAllGathers) {
  const double params = 1e9;
  EXPECT_DOUBLE_EQ(ZeroExtraCommBytesPerStep(params, {ZeroStage::kStage3, 4}),
                   2.0 * (3.0 / 4.0) * 2e9);
  EXPECT_DOUBLE_EQ(ZeroExtraCommBytesPerStep(params, {ZeroStage::kStage2, 4}), 0.0);
  EXPECT_DOUBLE_EQ(ZeroExtraCommBytesPerStep(params, {ZeroStage::kStage3, 1}), 0.0);
}

}  // namespace
}  // namespace hybridflow
