#include <gtest/gtest.h>

#include "src/perf/pipeline_schedule.h"

namespace hybridflow {
namespace {

TEST(PipelineScheduleTest, SingleStageHasNoBubble) {
  PipelineSchedule schedule = Build1F1BSchedule(1, 4, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(schedule.makespan, 4.0 * 3.0);
  EXPECT_NEAR(schedule.BubbleFraction(), 0.0, 1e-9);
}

TEST(PipelineScheduleTest, BubbleMatchesClosedForm) {
  // The canonical 1F1B bubble: (p-1)(tf+tb) extra time -> fraction
  // (p-1)/m of the ideal m(tf+tb).
  for (int p : {2, 4, 8}) {
    for (int m : {8, 16, 32}) {
      if (m < p) {
        continue;
      }
      PipelineSchedule schedule = Build1F1BSchedule(p, m, 1.0, 2.0);
      const double expected = static_cast<double>(p - 1) / static_cast<double>(m);
      EXPECT_NEAR(schedule.BubbleFraction(), expected, 1e-9)
          << "p=" << p << " m=" << m;
    }
  }
}

TEST(PipelineScheduleTest, GpipeAndOneFOneBHaveSameMakespan) {
  // Same bubble, different memory: the classic result.
  PipelineSchedule fb = Build1F1BSchedule(4, 16, 1.0, 2.0);
  PipelineSchedule gpipe = BuildGpipeSchedule(4, 16, 1.0, 2.0);
  EXPECT_NEAR(fb.makespan, gpipe.makespan, 1e-9);
}

TEST(PipelineScheduleTest, OneFOneBBoundsActivationMemory) {
  // 1F1B holds at most p microbatches of activations; GPipe holds all m.
  const int p = 4;
  const int m = 16;
  EXPECT_LE(PeakActivationsInFlight(Build1F1BSchedule(p, m, 1.0, 2.0)), p);
  EXPECT_EQ(PeakActivationsInFlight(BuildGpipeSchedule(p, m, 1.0, 2.0)), m);
}

TEST(PipelineScheduleTest, DependenciesAreRespected) {
  PipelineSchedule schedule = Build1F1BSchedule(3, 6, 1.0, 2.0);
  // Index tasks for cross-checks.
  auto find = [&](int stage, int microbatch, bool backward) -> const PipelineTask& {
    for (const PipelineTask& task : schedule.tasks) {
      if (task.stage == stage && task.microbatch == microbatch &&
          task.backward == backward) {
        return task;
      }
    }
    ADD_FAILURE() << "missing task";
    static PipelineTask dummy;
    return dummy;
  };
  for (int i = 0; i < 6; ++i) {
    // Forward flows down the pipeline...
    EXPECT_GE(find(1, i, false).start, find(0, i, false).end - 1e-12);
    EXPECT_GE(find(2, i, false).start, find(1, i, false).end - 1e-12);
    // ...backward flows up.
    EXPECT_GE(find(1, i, true).start, find(2, i, true).end - 1e-12);
    EXPECT_GE(find(0, i, true).start, find(1, i, true).end - 1e-12);
    // A microbatch's backward follows its own forward on every stage.
    for (int stage = 0; stage < 3; ++stage) {
      EXPECT_GE(find(stage, i, true).start, find(stage, i, false).end - 1e-12);
    }
  }
}

TEST(PipelineScheduleTest, TaskCountIsTwoPerStagePerMicrobatch) {
  PipelineSchedule schedule = Build1F1BSchedule(4, 8, 0.5, 1.0);
  EXPECT_EQ(schedule.tasks.size(), 2u * 4u * 8u);
}

TEST(PipelineScheduleTest, RenderShowsAllStages) {
  PipelineSchedule schedule = Build1F1BSchedule(3, 6, 1.0, 2.0);
  const std::string rendered = schedule.Render(60);
  EXPECT_NE(rendered.find("stage 0"), std::string::npos);
  EXPECT_NE(rendered.find("stage 2"), std::string::npos);
  EXPECT_NE(rendered.find('F'), std::string::npos);
  EXPECT_NE(rendered.find('B'), std::string::npos);
}

TEST(PipelineScheduleTest, MoreMicrobatchesShrinkBubble) {
  const double few = Build1F1BSchedule(4, 4, 1.0, 2.0).BubbleFraction();
  const double many = Build1F1BSchedule(4, 32, 1.0, 2.0).BubbleFraction();
  EXPECT_GT(few, many);
}

}  // namespace
}  // namespace hybridflow
