#include <gtest/gtest.h>

#include <numeric>

#include "src/transfer/protocol.h"

namespace hybridflow {
namespace {

std::vector<DeviceId> Devices(int n) {
  std::vector<DeviceId> devices(static_cast<size_t>(n));
  std::iota(devices.begin(), devices.end(), 0);
  return devices;
}

DataBatch MakeBatch(int64_t rows) {
  DataBatch batch;
  DataBatch::TokenColumn prompts;
  for (int64_t i = 0; i < rows; ++i) {
    prompts.push_back({i});
  }
  batch.SetTokens("prompts", std::move(prompts));
  return batch;
}

ProtocolContext Context(const ProcessGroups& groups) {
  ProtocolContext context;
  context.groups = &groups;
  return context;
}

ProtocolContext GenContext(const ProcessGroups& groups, GenParallelConfig gen,
                           GenGroupingMethod method) {
  ProtocolContext context = Context(groups);
  context.gen = gen;
  context.method = method;
  context.has_gen = true;
  return context;
}

// The fundamental protocol invariant: if every primary rank echoes its
// input shard, distribute followed by collect reproduces the original batch.
void CheckRoundTrip(TransferProtocol protocol, const ProtocolContext& context, int64_t rows) {
  DataBatch input = MakeBatch(rows);
  std::vector<DataBatch> per_rank = DistributeBatch(protocol, input, context);
  std::vector<DataBatch> outputs(per_rank.size());
  for (int rank : PrimaryRanks(protocol, context)) {
    outputs[static_cast<size_t>(rank)] = per_rank[static_cast<size_t>(rank)];
  }
  DataBatch collected = CollectBatch(protocol, outputs, context);
  ASSERT_EQ(collected.batch_size(), rows);
  EXPECT_EQ(collected.Tokens("prompts"), input.Tokens("prompts"));
}

TEST(ProtocolTest, ThreeDProtoRoundTrip) {
  ProcessGroups groups({2, 2, 4}, Devices(16));
  CheckRoundTrip(TransferProtocol::k3dProto, Context(groups), 12);
}

TEST(ProtocolTest, DpProtoRoundTrip) {
  ProcessGroups groups({1, 1, 8}, Devices(8));
  CheckRoundTrip(TransferProtocol::kDpProto, Context(groups), 17);
}

TEST(ProtocolTest, MicroDpRoundTripBothMethods) {
  ProcessGroups groups({1, 8, 2}, Devices(16));
  for (auto method : {GenGroupingMethod::kVanilla, GenGroupingMethod::kZeroRedundancy}) {
    CheckRoundTrip(TransferProtocol::k3dAllMicroDp,
                   GenContext(groups, {1, 2}, method), 16);
  }
}

TEST(ProtocolTest, ThreeDProtoDistributesByDpGroup) {
  ProcessGroups groups({1, 2, 2}, Devices(4));
  DataBatch input = MakeBatch(4);
  std::vector<DataBatch> per_rank =
      DistributeBatch(TransferProtocol::k3dProto, input, Context(groups));
  // Ranks 0,1 (d=0) get rows 0-1; ranks 2,3 (d=1) get rows 2-3; identical
  // within each model-parallel block (broadcast within the group).
  EXPECT_EQ(per_rank[0].Tokens("prompts"), per_rank[1].Tokens("prompts"));
  EXPECT_EQ(per_rank[2].Tokens("prompts"), per_rank[3].Tokens("prompts"));
  EXPECT_EQ(per_rank[0].Tokens("prompts")[0][0], 0);
  EXPECT_EQ(per_rank[2].Tokens("prompts")[0][0], 2);
}

TEST(ProtocolTest, ThreeDProtoCollectsFromLastStageTpZero) {
  // Table 3: output exists on the last pipeline stage, t = 0, per DP group.
  ProcessGroups groups({2, 2, 2}, Devices(8));
  std::vector<int> sources = CollectSourceRanks(TransferProtocol::k3dProto, Context(groups));
  ASSERT_EQ(sources.size(), 2u);
  for (int rank : sources) {
    TrainCoords coords = groups.TrainCoordsOf(rank);
    EXPECT_EQ(coords.p, 1);  // Last of 2 stages.
    EXPECT_EQ(coords.t, 0);
  }
}

TEST(ProtocolTest, OneToAllBroadcastsEverywhere) {
  ProcessGroups groups({1, 2, 2}, Devices(4));
  DataBatch input = MakeBatch(3);
  std::vector<DataBatch> per_rank =
      DistributeBatch(TransferProtocol::kOneToAll, input, Context(groups));
  for (const DataBatch& shard : per_rank) {
    EXPECT_EQ(shard.batch_size(), 3);
  }
  // Every rank runs the same computation under ONE_TO_ALL (SPMD), so the
  // primaries equal the collect sources: all ranks.
  EXPECT_EQ(PrimaryRanks(TransferProtocol::kOneToAll, Context(groups)).size(), 4u);
}

TEST(ProtocolTest, PpOnlyCollectsOnePerStage) {
  ProcessGroups groups({4, 2, 1}, Devices(8));
  std::vector<int> sources =
      CollectSourceRanks(TransferProtocol::k3dPpOnly, Context(groups));
  ASSERT_EQ(sources.size(), 4u);
  for (size_t i = 0; i < sources.size(); ++i) {
    TrainCoords coords = groups.TrainCoordsOf(sources[i]);
    EXPECT_EQ(coords.p, static_cast<int>(i));
    EXPECT_EQ(coords.t, 0);
    EXPECT_EQ(coords.d, 0);
  }
}

TEST(ProtocolTest, AllToAllGathersEveryRank) {
  ProcessGroups groups({1, 1, 4}, Devices(4));
  DataBatch input = MakeBatch(2);
  std::vector<DataBatch> per_rank =
      DistributeBatch(TransferProtocol::kAllToAll, input, Context(groups));
  std::vector<DataBatch> outputs = per_rank;  // Echo.
  DataBatch collected = CollectBatch(TransferProtocol::kAllToAll, outputs, Context(groups));
  EXPECT_EQ(collected.batch_size(), 8);  // 4 ranks x 2 rows each.
}

TEST(ProtocolTest, MicroDpPrimariesAreReplicaLeaders) {
  ProcessGroups groups({1, 4, 2}, Devices(8));
  auto context = GenContext(groups, {1, 2}, GenGroupingMethod::kZeroRedundancy);
  std::vector<int> primaries = PrimaryRanks(TransferProtocol::k3dAllMicroDp, context);
  // d * micro_dp = 2 * 2 = 4 generation replicas.
  ASSERT_EQ(primaries.size(), 4u);
  for (int rank : primaries) {
    GenCoords coords = groups.GenCoordsOf(rank, context.gen, context.method);
    EXPECT_EQ(coords.tg, 0);
    EXPECT_EQ(coords.pg, 0);
  }
}

TEST(ProtocolTest, MicroDpRequiresGenContext) {
  ProcessGroups groups({1, 4, 2}, Devices(8));
  DataBatch input = MakeBatch(4);
  EXPECT_DEATH(DistributeBatch(TransferProtocol::k3dAllMicroDp, input, Context(groups)),
               "requires a generation config");
}

TEST(ProtocolTest, NamesAreStable) {
  EXPECT_STREQ(TransferProtocolName(TransferProtocol::k3dProto), "3D_PROTO");
  EXPECT_STREQ(TransferProtocolName(TransferProtocol::k3dAllMicroDp), "3D_ALL_MICRO_DP");
  EXPECT_STREQ(TransferProtocolName(TransferProtocol::kOneToAll), "ONE_TO_ALL");
}

TEST(ProtocolRegistryTest, RegisterAndInvokeCustomProtocol) {
  CustomProtocol protocol;
  protocol.name = "REVERSE_PROTO";
  protocol.distribute = [](const DataBatch& input, const ProtocolContext& context) {
    std::vector<DataBatch> out(
        static_cast<size_t>(context.groups->world_size()));
    for (size_t rank = 0; rank < out.size(); ++rank) {
      out[out.size() - 1 - rank] = input;
    }
    return out;
  };
  protocol.collect = [](const std::vector<DataBatch>& outputs, const ProtocolContext&) {
    return outputs.front();
  };
  int id = ProtocolRegistry::Instance().Register(protocol);
  EXPECT_TRUE(ProtocolRegistry::Instance().Has("REVERSE_PROTO"));
  const CustomProtocol& fetched = ProtocolRegistry::Instance().Get(id);
  ProcessGroups groups({1, 1, 2}, Devices(2));
  ProtocolContext context = Context(groups);
  DataBatch input = MakeBatch(2);
  std::vector<DataBatch> distributed = fetched.distribute(input, context);
  EXPECT_EQ(distributed.size(), 2u);
  DataBatch collected = fetched.collect(distributed, context);
  EXPECT_EQ(collected.batch_size(), 2);
}

}  // namespace
}  // namespace hybridflow
