#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/common/config.h"

namespace hybridflow {
namespace {

TEST(TrimWhitespaceTest, Basics) {
  EXPECT_EQ(TrimWhitespace("  x  "), "x");
  EXPECT_EQ(TrimWhitespace("x"), "x");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace("\ta b\n"), "a b");
}

TEST(ConfigMapTest, ParsesKeysValuesAndComments) {
  ConfigMap config;
  ASSERT_TRUE(config.ParseString(R"(
# cluster setup
cluster.gpus = 64
model.actor = 13B   # inline comment
run.real_compute = true
perf.mfu = 0.45
)"));
  EXPECT_EQ(config.GetInt("cluster.gpus", 0), 64);
  EXPECT_EQ(config.GetString("model.actor"), "13B");
  EXPECT_TRUE(config.GetBool("run.real_compute", false));
  EXPECT_DOUBLE_EQ(config.GetDouble("perf.mfu", 0.0), 0.45);
}

TEST(ConfigMapTest, FallbacksForMissingKeys) {
  ConfigMap config;
  EXPECT_EQ(config.GetInt("absent", 7), 7);
  EXPECT_EQ(config.GetString("absent", "x"), "x");
  EXPECT_FALSE(config.GetBool("absent", false));
  EXPECT_DOUBLE_EQ(config.GetDouble("absent", 1.5), 1.5);
}

TEST(ConfigMapTest, LaterKeysOverride) {
  ConfigMap config;
  ASSERT_TRUE(config.ParseString("a = 1\na = 2\n"));
  EXPECT_EQ(config.GetInt("a", 0), 2);
}

TEST(ConfigMapTest, MalformedLineReportsError) {
  ConfigMap config;
  std::string error;
  EXPECT_FALSE(config.ParseString("cluster.gpus 64\n", &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(config.ParseString("= value\n", &error));
}

TEST(ConfigMapTest, BadTypedValueAborts) {
  ConfigMap config;
  ASSERT_TRUE(config.ParseString("n = notanumber\nb = maybe\n"));
  EXPECT_DEATH(config.GetInt("n", 0), "not an integer");
  EXPECT_DEATH(config.GetBool("b", false), "not a boolean");
}

TEST(ConfigMapTest, BoolSpellings) {
  ConfigMap config;
  ASSERT_TRUE(config.ParseString("a=true\nb=0\nc=yes\nd=off\n"));
  EXPECT_TRUE(config.GetBool("a", false));
  EXPECT_FALSE(config.GetBool("b", true));
  EXPECT_TRUE(config.GetBool("c", false));
  EXPECT_FALSE(config.GetBool("d", true));
}

TEST(ConfigMapTest, ParseFileRoundTrip) {
  const std::string path = "/tmp/hf_config_test.cfg";
  {
    std::ofstream out(path);
    out << "cluster.gpus = 16\n";
  }
  ConfigMap config;
  ASSERT_TRUE(config.ParseFile(path));
  EXPECT_EQ(config.GetInt("cluster.gpus", 0), 16);
  std::remove(path.c_str());

  std::string error;
  EXPECT_FALSE(config.ParseFile("/nonexistent/path.cfg", &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace hybridflow
