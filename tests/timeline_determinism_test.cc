// Regression gate for timeline determinism: the DES performance plane must
// be a pure function of (config, seed). Two independently built PPO systems
// run the same iterations and must produce bit-identical traces — through
// the TraceSpan stream and through the Chrome-trace exporter, so a
// nondeterministic export path cannot hide behind a deterministic schedule.
#include <gtest/gtest.h>

#include <string>

#include "src/analysis/timeline_checker.h"
#include "src/baselines/system_builder.h"
#include "src/sim/trace_export.h"

namespace hybridflow {
namespace {

SystemBuildConfig PpoConfig() {
  SystemBuildConfig config;
  config.system = RlhfSystem::kHybridFlow;
  config.algorithm = RlhfAlgorithm::kPpo;
  config.num_gpus = 16;
  config.real_compute = true;
  config.real_batch = 16;
  config.seed = 4242;
  config.workload.global_batch = 256;
  config.workload.prompt_len = 256;
  config.workload.response_len = 512;
  return config;
}

TEST(TimelineDeterminismTest, TwoPpoRunsExportIdenticalTraces) {
  std::string first_json;
  std::string second_json;
  std::vector<TraceSpan> first_trace;
  std::vector<TraceSpan> second_trace;
  for (int run = 0; run < 2; ++run) {
    RlhfSystemInstance system = BuildSystem(PpoConfig());
    ASSERT_TRUE(system.feasible);
    for (int i = 0; i < 3; ++i) {
      system.RunIteration();
    }
    const ClusterState& cluster = system.controller->cluster();
    (run == 0 ? first_json : second_json) = TraceToChromeJson(cluster);
    (run == 0 ? first_trace : second_trace) = cluster.trace();
  }
  EXPECT_EQ(CompareTraces(first_trace, second_trace), "") << "schedules diverged";
  EXPECT_EQ(first_json, second_json) << "exported traces diverged";
  EXPECT_FALSE(first_json.empty());
}

// The real data plane must not feed nondeterminism back into the schedule:
// thread-pool interleaving varies between runs, but per-(call, rank) RNG
// streams keep both the numerics and the resulting timings identical.
TEST(TimelineDeterminismTest, RealComputePlaneDoesNotPerturbTimeline) {
  auto run_metrics = [] {
    RlhfSystemInstance system = BuildSystem(PpoConfig());
    EXPECT_TRUE(system.feasible);
    IterationMetrics last;
    for (int i = 0; i < 2; ++i) {
      last = system.RunIteration();
    }
    return last;
  };
  const IterationMetrics a = run_metrics();
  const IterationMetrics b = run_metrics();
  EXPECT_DOUBLE_EQ(a.iteration_seconds, b.iteration_seconds);
  EXPECT_DOUBLE_EQ(a.mean_reward, b.mean_reward);
  EXPECT_DOUBLE_EQ(a.actor_loss, b.actor_loss);
}

}  // namespace
}  // namespace hybridflow
