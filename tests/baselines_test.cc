#include <gtest/gtest.h>

#include "src/baselines/system_builder.h"

namespace hybridflow {
namespace {

SystemBuildConfig Config(RlhfSystem system, const char* model = "7B", int gpus = 16) {
  SystemBuildConfig config;
  config.system = system;
  config.num_gpus = gpus;
  config.actor_model = ModelSpec::ByName(model);
  config.critic_model = ModelSpec::ByName(model);
  config.real_compute = false;
  return config;
}

class SystemSweep : public ::testing::TestWithParam<RlhfSystem> {};

TEST_P(SystemSweep, BuildsAndRunsAt7B16) {
  RlhfSystemInstance system = BuildSystem(Config(GetParam()));
  ASSERT_TRUE(system.feasible) << RlhfSystemName(GetParam());
  IterationMetrics metrics = system.RunAveraged(1, 2);
  EXPECT_GT(metrics.throughput_tokens_per_sec, 0.0);
  EXPECT_GT(metrics.iteration_seconds, 0.0);
}

TEST_P(SystemSweep, NoMemoryOverflowAt7B16) {
  RlhfSystemInstance system = BuildSystem(Config(GetParam()));
  ASSERT_TRUE(system.feasible);
  system.RunIteration();
  EXPECT_FALSE(system.controller->cluster().AnyDeviceEverOom())
      << RlhfSystemName(GetParam()) << " overflowed device memory";
}

INSTANTIATE_TEST_SUITE_P(Systems, SystemSweep,
                         ::testing::Values(RlhfSystem::kHybridFlow,
                                           RlhfSystem::kDeepSpeedChat, RlhfSystem::kOpenRlhf,
                                           RlhfSystem::kNemoAligner),
                         [](const ::testing::TestParamInfo<RlhfSystem>& info) {
                           switch (info.param) {
                             case RlhfSystem::kHybridFlow:
                               return "HybridFlow";
                             case RlhfSystem::kDeepSpeedChat:
                               return "DeepSpeedChat";
                             case RlhfSystem::kOpenRlhf:
                               return "OpenRlhf";
                             case RlhfSystem::kNemoAligner:
                               return "NemoAligner";
                           }
                           return "Unknown";
                         });

// The paper's headline (§8.2): HybridFlow outperforms every baseline across
// model scales and cluster sizes.
struct HeadlineCase {
  const char* model;
  int gpus;
};

class HeadlineSweep : public ::testing::TestWithParam<HeadlineCase> {};

TEST_P(HeadlineSweep, HybridFlowBeatsAllBaselines) {
  const HeadlineCase& param = GetParam();
  RlhfSystemInstance hybridflow =
      BuildSystem(Config(RlhfSystem::kHybridFlow, param.model, param.gpus));
  ASSERT_TRUE(hybridflow.feasible);
  const double hybridflow_tput = hybridflow.RunAveraged(1, 2).throughput_tokens_per_sec;
  for (RlhfSystem baseline : {RlhfSystem::kDeepSpeedChat, RlhfSystem::kOpenRlhf,
                              RlhfSystem::kNemoAligner}) {
    RlhfSystemInstance system = BuildSystem(Config(baseline, param.model, param.gpus));
    if (!system.feasible) {
      continue;  // Paper: baselines start at their smallest non-OOM scale.
    }
    const double baseline_tput = system.RunAveraged(1, 2).throughput_tokens_per_sec;
    EXPECT_GT(hybridflow_tput, baseline_tput)
        << RlhfSystemName(baseline) << " at " << param.model << "/" << param.gpus;
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, HeadlineSweep,
                         ::testing::Values(HeadlineCase{"7B", 8}, HeadlineCase{"7B", 16},
                                           HeadlineCase{"7B", 32}, HeadlineCase{"13B", 16},
                                           HeadlineCase{"13B", 32}, HeadlineCase{"34B", 32},
                                           HeadlineCase{"70B", 64}),
                         [](const ::testing::TestParamInfo<HeadlineCase>& info) {
                           return std::string(info.param.model) + "x" +
                                  std::to_string(info.param.gpus);
                         });

// The real (toy-numerics) data plane must work through every baseline's
// protocol/engine combination, not just HybridFlow's.
class RealComputeSweep : public ::testing::TestWithParam<RlhfSystem> {};

TEST_P(RealComputeSweep, BaselinesRunRealNumericsEndToEnd) {
  SystemBuildConfig config = Config(GetParam());
  config.real_compute = true;
  config.real_batch = 32;
  config.seed = 61;
  config.workload.global_batch = 128;
  RlhfSystemInstance system = BuildSystem(config);
  ASSERT_TRUE(system.feasible);
  IterationMetrics first = system.RunIteration();
  IterationMetrics second = system.RunIteration();
  EXPECT_NE(first.mean_reward, 0.0);
  EXPECT_GT(first.iteration_seconds, 0.0);
  // Learning machinery is wired: losses are being produced.
  EXPECT_NE(second.actor_loss, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Systems, RealComputeSweep,
                         ::testing::Values(RlhfSystem::kHybridFlow,
                                           RlhfSystem::kDeepSpeedChat, RlhfSystem::kOpenRlhf,
                                           RlhfSystem::kNemoAligner),
                         [](const ::testing::TestParamInfo<RlhfSystem>& info) {
                           switch (info.param) {
                             case RlhfSystem::kHybridFlow:
                               return "HybridFlow";
                             case RlhfSystem::kDeepSpeedChat:
                               return "DeepSpeedChat";
                             case RlhfSystem::kOpenRlhf:
                               return "OpenRlhf";
                             case RlhfSystem::kNemoAligner:
                               return "NemoAligner";
                           }
                           return "Unknown";
                         });

TEST(BaselineStructureTest, DeepSpeedChatColocatesEverything) {
  RlhfSystemInstance system = BuildSystem(Config(RlhfSystem::kDeepSpeedChat));
  ASSERT_TRUE(system.feasible);
  EXPECT_TRUE(system.actor->pool().SameDevices(system.critic->pool()));
  EXPECT_TRUE(system.actor->pool().SameDevices(system.reference->pool()));
  EXPECT_EQ(system.actor->engine().mode(), ActorEngineMode::kDsChat);
  EXPECT_EQ(system.actor->options().backend, WorkerBackend::kZero);
}

TEST(BaselineStructureTest, OpenRlhfSeparatesEveryModel) {
  RlhfSystemInstance system = BuildSystem(Config(RlhfSystem::kOpenRlhf));
  ASSERT_TRUE(system.feasible);
  EXPECT_FALSE(system.actor->pool().Overlaps(system.critic->pool()));
  EXPECT_FALSE(system.actor->pool().Overlaps(system.reference->pool()));
  EXPECT_FALSE(system.critic->pool().Overlaps(system.reward->pool()));
  EXPECT_EQ(system.actor->engine().mode(), ActorEngineMode::kTwoCopies);
  // The generation pool exists and is disjoint from training.
  ASSERT_NE(system.actor->actor_options().gen_pool, nullptr);
  EXPECT_FALSE(system.actor->pool().Overlaps(*system.actor->actor_options().gen_pool));
}

TEST(BaselineStructureTest, NemoSplitsActorRefFromCriticReward) {
  RlhfSystemInstance system = BuildSystem(Config(RlhfSystem::kNemoAligner));
  ASSERT_TRUE(system.feasible);
  EXPECT_TRUE(system.actor->pool().SameDevices(system.reference->pool()));
  EXPECT_TRUE(system.critic->pool().SameDevices(system.reward->pool()));
  EXPECT_FALSE(system.actor->pool().Overlaps(system.critic->pool()));
  EXPECT_EQ(system.actor->engine().mode(), ActorEngineMode::kShared);
  EXPECT_FALSE(system.actor->actor_options().use_kv_cache);
}

TEST(BaselineStructureTest, NemoGenerationDominatesIterationTime) {
  // §8.2: NeMo-Aligner's generation accounts for up to 81.2% of its
  // iteration time.
  RlhfSystemInstance system = BuildSystem(Config(RlhfSystem::kNemoAligner, "13B", 16));
  ASSERT_TRUE(system.feasible);
  IterationMetrics metrics = system.RunIteration();
  EXPECT_GT(metrics.generation_seconds / metrics.iteration_seconds, 0.5);
}

TEST(BaselineStructureTest, HybridFlowTransitionIsCheapest) {
  // Fig 14's ordering: HybridFlow < DS-Chat and < OpenRLHF transition time.
  const char* model = "34B";
  const int gpus = 32;
  double times[3] = {0, 0, 0};
  RlhfSystem systems[3] = {RlhfSystem::kHybridFlow, RlhfSystem::kDeepSpeedChat,
                           RlhfSystem::kOpenRlhf};
  for (int i = 0; i < 3; ++i) {
    RlhfSystemInstance system = BuildSystem(Config(systems[i], model, gpus));
    ASSERT_TRUE(system.feasible) << RlhfSystemName(systems[i]);
    times[i] = system.RunIteration().transition_seconds;
  }
  EXPECT_LT(times[0], times[1]);
  EXPECT_LT(times[0], times[2]);
}

TEST(BaselineStructureTest, InfeasibleConfigsAreReportedNotFatal) {
  // 70B on 8 GPUs cannot host 4 models' training state.
  RlhfSystemInstance system = BuildSystem(Config(RlhfSystem::kDeepSpeedChat, "70B", 8));
  EXPECT_FALSE(system.feasible);
  EXPECT_EQ(system.program, nullptr);
}

TEST(BaselineStructureTest, OpenRlhfAllocationsCoverClusterExactly) {
  RlhfSystemInstance system = BuildSystem(Config(RlhfSystem::kOpenRlhf, "7B", 32));
  ASSERT_TRUE(system.feasible);
  int total = system.actor->pool().size() + system.actor->actor_options().gen_pool->size() +
              system.critic->pool().size() + system.reference->pool().size() +
              system.reward->pool().size();
  EXPECT_EQ(total, 32);
}

TEST(BaselineStructureTest, RunAveragedAveragesThroughput) {
  RlhfSystemInstance system = BuildSystem(Config(RlhfSystem::kHybridFlow));
  ASSERT_TRUE(system.feasible);
  IterationMetrics averaged = system.RunAveraged(2, 3);
  IterationMetrics single = system.RunIteration();
  EXPECT_NEAR(averaged.throughput_tokens_per_sec, single.throughput_tokens_per_sec,
              single.throughput_tokens_per_sec * 0.01);
}

}  // namespace
}  // namespace hybridflow
