#include <gtest/gtest.h>

#include <fstream>

#include "src/common/rng.h"
#include "src/sim/des_executor.h"
#include "src/sim/trace_export.h"

namespace hybridflow {
namespace {

TEST(DesExecutorTest, IndependentOpsOverlap) {
  DesExecutor executor(ClusterSpec::WithGpus(2));
  auto a = executor.Submit("a", "train", {0}, 5.0);
  auto b = executor.Submit("b", "train", {1}, 3.0);
  executor.Run();
  EXPECT_DOUBLE_EQ(executor.SpanOf(a).start, 0.0);
  EXPECT_DOUBLE_EQ(executor.SpanOf(b).start, 0.0);
  EXPECT_DOUBLE_EQ(executor.Makespan(), 5.0);
}

TEST(DesExecutorTest, DependencyDelaysStart) {
  DesExecutor executor(ClusterSpec::WithGpus(2));
  auto a = executor.Submit("a", "train", {0}, 5.0);
  auto b = executor.Submit("b", "train", {1}, 3.0, {a});
  executor.Run();
  EXPECT_DOUBLE_EQ(executor.SpanOf(b).start, 5.0);
  EXPECT_DOUBLE_EQ(executor.Makespan(), 8.0);
}

TEST(DesExecutorTest, DeviceExclusivitySerializes) {
  DesExecutor executor(ClusterSpec::WithGpus(1));
  auto a = executor.Submit("a", "train", {0}, 2.0);
  auto b = executor.Submit("b", "train", {0}, 2.0);
  executor.Run();
  EXPECT_DOUBLE_EQ(executor.SpanOf(b).start, executor.SpanOf(a).end);
}

TEST(DesExecutorTest, MultiDeviceOpWaitsForAllQueues) {
  DesExecutor executor(ClusterSpec::WithGpus(2));
  executor.Submit("long", "train", {1}, 4.0);
  auto group = executor.Submit("group", "train", {0, 1}, 1.0);
  executor.Run();
  EXPECT_DOUBLE_EQ(executor.SpanOf(group).start, 4.0);
}

TEST(DesExecutorTest, ZeroDurationOpsComplete) {
  DesExecutor executor(ClusterSpec::WithGpus(1));
  auto a = executor.Submit("a", "transfer", {0}, 0.0);
  auto b = executor.Submit("b", "train", {0}, 1.0, {a});
  executor.Run();
  EXPECT_DOUBLE_EQ(executor.SpanOf(a).end, 0.0);
  EXPECT_DOUBLE_EQ(executor.SpanOf(b).start, 0.0);
}

// Property: for program-order submission, the DES executor produces exactly
// the same schedule as the greedy timeline scheduler, on random DAGs.
TEST(DesExecutorTest, EquivalentToTimelineSchedulingOnRandomDags) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const int num_devices = static_cast<int>(rng.UniformInt(1, 6));
    const int num_ops = static_cast<int>(rng.UniformInt(1, 40));
    ClusterSpec spec = ClusterSpec::WithGpus(num_devices);
    DesExecutor executor(spec);
    ClusterState timeline(spec);

    std::vector<SimTime> end_times;
    for (int op = 0; op < num_ops; ++op) {
      // Random non-empty device subset.
      std::vector<DeviceId> devices;
      for (int d = 0; d < num_devices; ++d) {
        if (rng.UniformInt(0, 1) == 1) {
          devices.push_back(d);
        }
      }
      if (devices.empty()) {
        devices.push_back(static_cast<DeviceId>(rng.UniformInt(0, num_devices - 1)));
      }
      // Random dependencies on earlier ops.
      std::vector<DesExecutor::OpId> deps;
      SimTime ready = 0.0;
      for (int prior = 0; prior < op; ++prior) {
        if (rng.UniformInt(0, 4) == 0) {
          deps.push_back(prior);
          ready = std::max(ready, end_times[static_cast<size_t>(prior)]);
        }
      }
      const SimTime duration = rng.Uniform(0.0, 10.0);
      executor.Submit("op" + std::to_string(op), "x", devices, duration, deps);
      const TraceSpan& span =
          timeline.ScheduleOp("op" + std::to_string(op), "x", devices, ready, duration);
      end_times.push_back(span.end);
    }
    executor.Run();
    for (int op = 0; op < num_ops; ++op) {
      EXPECT_NEAR(executor.SpanOf(op).start, timeline.trace()[static_cast<size_t>(op)].start,
                  1e-9)
          << "trial " << trial << " op " << op;
      EXPECT_NEAR(executor.SpanOf(op).end, end_times[static_cast<size_t>(op)], 1e-9);
    }
    EXPECT_NEAR(executor.Makespan(), timeline.Makespan(), 1e-9);
  }
}

TEST(DesExecutorTest, RejectsForwardDependencies) {
  DesExecutor executor(ClusterSpec::WithGpus(1));
  executor.Submit("a", "x", {0}, 1.0);
  EXPECT_DEATH(executor.Submit("b", "x", {0}, 1.0, {5}), "");
}

// --- Trace export -------------------------------------------------------------

TEST(TraceExportTest, ChromeJsonContainsSpansAndThreads) {
  ClusterState state(ClusterSpec::WithGpus(2));
  state.ScheduleOp("actor.generate", "generate", {0, 1}, 0.0, 1.5);
  state.ScheduleOp("critic.update", "train", {0}, 0.0, 0.5);
  const std::string json = TraceToChromeJson(state);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("actor.generate"), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"train\""), std::string::npos);
  EXPECT_NE(json.find("GPU 1"), std::string::npos);
  // Duration in microseconds.
  EXPECT_NE(json.find("\"dur\":1500000.000"), std::string::npos);
}

TEST(TraceExportTest, WritesFile) {
  ClusterState state(ClusterSpec::WithGpus(1));
  state.ScheduleOp("op", "infer", {0}, 0.0, 1.0);
  const std::string path = "/tmp/hf_trace_test.json";
  ASSERT_TRUE(WriteChromeTrace(state, path));
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::remove(path.c_str());
}

TEST(TraceExportTest, BusyTimeAndUtilization) {
  ClusterState state(ClusterSpec::WithGpus(2));
  state.ScheduleOp("a", "train", {0, 1}, 0.0, 2.0);
  state.ScheduleOp("b", "infer", {0}, 0.0, 2.0);
  std::map<std::string, double> busy = BusyTimeByCategory(state);
  EXPECT_DOUBLE_EQ(busy.at("train"), 4.0);
  EXPECT_DOUBLE_EQ(busy.at("infer"), 2.0);
  // Makespan 4, device 0 busy 4, device 1 busy 2 -> 6/8.
  EXPECT_DOUBLE_EQ(MeanUtilization(state), 0.75);
}

TEST(TraceExportTest, EmptyTraceUtilizationIsZero) {
  ClusterState state(ClusterSpec::WithGpus(2));
  EXPECT_DOUBLE_EQ(MeanUtilization(state), 0.0);
}

}  // namespace
}  // namespace hybridflow
