#include <gtest/gtest.h>

#include "src/controller/controller.h"
#include "src/obs/metrics.h"

namespace hybridflow {
namespace {

TEST(ResourcePoolTest, BasicProperties) {
  ResourcePool pool("actor", {0, 1, 2, 3});
  EXPECT_EQ(pool.size(), 4);
  EXPECT_EQ(pool.name(), "actor");
}

TEST(ResourcePoolTest, OverlapDetection) {
  ResourcePool a("a", {0, 1});
  ResourcePool b("b", {2, 3});
  ResourcePool c("c", {1, 2});
  EXPECT_FALSE(a.Overlaps(b));
  EXPECT_TRUE(a.Overlaps(c));
  EXPECT_TRUE(c.Overlaps(b));
  EXPECT_TRUE(a.SameDevices(ResourcePool("a2", {1, 0})));
  EXPECT_FALSE(a.SameDevices(b));
}

TEST(ResourcePoolTest, RejectsDuplicateDevices) {
  EXPECT_DEATH(ResourcePool("bad", {0, 0}), "duplicate");
}

TEST(ControllerTest, CreatePoolRange) {
  Controller controller(ClusterSpec::WithGpus(8));
  auto pool = controller.CreatePoolRange("p", 2, 3);
  EXPECT_EQ(pool->devices(), (std::vector<DeviceId>{2, 3, 4}));
}

TEST(ControllerTest, AllowsIdenticalPoolsForColocation) {
  Controller controller(ClusterSpec::WithGpus(8));
  controller.CreatePoolRange("a", 0, 4);
  auto second = controller.CreatePoolRange("b", 0, 4);  // Same devices: OK.
  EXPECT_EQ(second->size(), 4);
}

TEST(ControllerTest, RejectsPartialOverlap) {
  Controller controller(ClusterSpec::WithGpus(8));
  controller.CreatePoolRange("a", 0, 4);
  EXPECT_DEATH(controller.CreatePoolRange("b", 2, 4), "partially overlaps");
}

TEST(ControllerTest, RejectsOutOfRangeDevices) {
  Controller controller(ClusterSpec::WithGpus(4));
  EXPECT_DEATH(controller.CreatePool("bad", {3, 4}), "");
}

TEST(ControllerTest, IterationTimingTracksMakespanDelta) {
  Controller controller(ClusterSpec::WithGpus(2));
  controller.cluster().ScheduleOp("warmup", "train", {0}, 0.0, 10.0);
  controller.BeginIteration();
  EXPECT_DOUBLE_EQ(controller.IterationSeconds(), 0.0);
  controller.cluster().ScheduleOp("op", "train", {0}, 0.0, 5.0);
  EXPECT_DOUBLE_EQ(controller.IterationSeconds(), 5.0);
  // IterationSeconds() is a pure getter; EndIteration records the gauge.
  EXPECT_DOUBLE_EQ(controller.EndIteration(), 5.0);
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().GetGauge("controller.last_iteration_sim_seconds").Value(), 5.0);
}

TEST(BatchFutureTest, ImmediateHasZeroReadyTime) {
  DataBatch batch;
  batch.SetFloat("x", {{1.0f}});
  BatchFuture future = BatchFuture::Immediate(std::move(batch));
  EXPECT_DOUBLE_EQ(future.ready_time, 0.0);
  EXPECT_EQ(future.data.batch_size(), 1);
}

}  // namespace
}  // namespace hybridflow
