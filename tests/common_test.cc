#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/common/units.h"

namespace hybridflow {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%d-%d", 1, 8, 2), "1-8-2");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("%s", "hello"), "hello");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, HandlesLongStrings) {
  std::string big(1000, 'x');
  EXPECT_EQ(StrFormat("%s!", big.c_str()).size(), 1001u);
}

TEST(JoinIntsTest, JoinsWithSeparator) {
  EXPECT_EQ(JoinInts({1, 2, 3}, ","), "1,2,3");
  EXPECT_EQ(JoinInts({7}, ","), "7");
  EXPECT_EQ(JoinInts({}, ","), "");
}

TEST(HumanBytesTest, PicksSensibleUnits) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KiB");
  EXPECT_EQ(HumanBytes(3.5 * kMiB), "3.50 MiB");
  EXPECT_EQ(HumanBytes(140 * kGB), "130.39 GiB");
}

TEST(HumanSecondsTest, PicksSensibleUnits) {
  EXPECT_EQ(HumanSeconds(90.0), "1.5 min");
  EXPECT_EQ(HumanSeconds(2.5), "2.50 s");
  EXPECT_EQ(HumanSeconds(0.010), "10.00 ms");
  EXPECT_EQ(HumanSeconds(5e-6), "5.00 us");
}

TEST(UnitsTest, BandwidthConversions) {
  EXPECT_DOUBLE_EQ(GbpsToBytesPerSec(200.0), 25e9);
  EXPECT_DOUBLE_EQ(GBpsToBytesPerSec(300.0), 300e9);
  EXPECT_DOUBLE_EQ(BytesToGB(1e9), 1.0);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng base(42);
  Rng fork1 = base.Fork(1);
  Rng fork2 = base.Fork(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (fork1.UniformInt(0, 1 << 30) != fork2.UniformInt(0, 1 << 30)) {
      differing += 1;
    }
  }
  EXPECT_GT(differing, 45);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t value = rng.UniformInt(0, 3);
    ASSERT_GE(value, 0);
    ASSERT_LE(value, 3);
    seen.insert(value);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(7);
  std::vector<double> weights = {0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Categorical(weights), 1);
  }
}

TEST(RngTest, CategoricalAllZeroFallsBackToUniform) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.Categorical({0.0, 0.0, 0.0}));
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, CategoricalIsApproximatelyProportional) {
  Rng rng(123);
  std::vector<int> counts(2, 0);
  for (int i = 0; i < 10000; ++i) {
    counts[static_cast<size_t>(rng.Categorical({1.0, 3.0}))] += 1;
  }
  const double ratio = static_cast<double>(counts[1]) / counts[0];
  EXPECT_NEAR(ratio, 3.0, 0.5);
}

}  // namespace
}  // namespace hybridflow
