// Randomized property sweep over the transfer-protocol layer: for every
// built-in protocol and many random (parallelism, batch) configurations,
// the echo round-trip must reproduce the input batch, primaries must be a
// subset of collect sources where the protocol defines them that way, and
// distribution must be consistent within broadcast groups.
#include <gtest/gtest.h>

#include <numeric>

#include "src/common/rng.h"
#include "src/transfer/protocol.h"

namespace hybridflow {
namespace {

std::vector<DeviceId> Devices(int n) {
  std::vector<DeviceId> devices(static_cast<size_t>(n));
  std::iota(devices.begin(), devices.end(), 0);
  return devices;
}

DataBatch RandomBatch(int64_t rows, Rng& rng) {
  DataBatch batch;
  DataBatch::TokenColumn prompts;
  DataBatch::FloatColumn scores;
  for (int64_t i = 0; i < rows; ++i) {
    std::vector<int64_t> prompt;
    const int64_t len = rng.UniformInt(1, 6);
    for (int64_t k = 0; k < len; ++k) {
      prompt.push_back(rng.UniformInt(0, 31));
    }
    prompts.push_back(std::move(prompt));
    scores.push_back({static_cast<float>(rng.Uniform(-1, 1))});
  }
  batch.SetTokens("prompts", std::move(prompts));
  batch.SetFloat("scores", std::move(scores));
  return batch;
}

struct RandomConfig {
  ParallelConfig train;
  GenParallelConfig gen;
};

RandomConfig DrawConfig(Rng& rng) {
  const int tp_options[] = {1, 2, 4, 8};
  const int pp_options[] = {1, 2, 4};
  const int dp_options[] = {1, 2, 3, 4};
  RandomConfig config;
  config.train.tp = tp_options[rng.UniformInt(0, 3)];
  config.train.pp = pp_options[rng.UniformInt(0, 2)];
  config.train.dp = dp_options[rng.UniformInt(0, 3)];
  // Compatible generation sizes: divisors.
  std::vector<int> tg_candidates;
  for (int tg = 1; tg <= config.train.tp; tg *= 2) {
    if (config.train.tp % tg == 0) {
      tg_candidates.push_back(tg);
    }
  }
  std::vector<int> pg_candidates;
  for (int pg = 1; pg <= config.train.pp; pg *= 2) {
    if (config.train.pp % pg == 0) {
      pg_candidates.push_back(pg);
    }
  }
  config.gen.tp = tg_candidates[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(tg_candidates.size()) - 1))];
  config.gen.pp = pg_candidates[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(pg_candidates.size()) - 1))];
  return config;
}

TEST(ProtocolPropertySweep, EchoRoundTripOnRandomConfigs) {
  Rng rng(777);
  const TransferProtocol protocols[] = {
      TransferProtocol::k3dProto,      TransferProtocol::kDpProto,
      TransferProtocol::k3dAllMicroDp, TransferProtocol::kMicroDpProto,
      TransferProtocol::kOneToAll,     TransferProtocol::k3dPpOnly,
      TransferProtocol::kAllGatherProto};
  for (int trial = 0; trial < 60; ++trial) {
    const RandomConfig config = DrawConfig(rng);
    ProcessGroups groups(config.train, Devices(config.train.world_size()));
    for (TransferProtocol protocol : protocols) {
      ProtocolContext context;
      context.groups = &groups;
      context.gen = config.gen;
      context.method = rng.UniformInt(0, 1) == 0 ? GenGroupingMethod::kVanilla
                                                 : GenGroupingMethod::kZeroRedundancy;
      context.has_gen = true;

      // Row count: something that stresses uneven splits.
      const int64_t rows = rng.UniformInt(1, 40);
      DataBatch input = RandomBatch(rows, rng);
      std::vector<DataBatch> per_rank = DistributeBatch(protocol, input, context);
      ASSERT_EQ(per_rank.size(), static_cast<size_t>(groups.world_size()));

      std::vector<DataBatch> outputs(per_rank.size());
      const std::vector<int> primaries = PrimaryRanks(protocol, context);
      ASSERT_FALSE(primaries.empty());
      for (int rank : primaries) {
        outputs[static_cast<size_t>(rank)] = per_rank[static_cast<size_t>(rank)];
      }
      DataBatch collected = CollectBatch(protocol, outputs, context);

      // Splitting protocols reproduce the batch exactly; broadcast
      // protocols reproduce `copies` concatenations of it.
      const bool splitting = protocol == TransferProtocol::k3dProto ||
                             protocol == TransferProtocol::kDpProto ||
                             protocol == TransferProtocol::k3dAllMicroDp ||
                             protocol == TransferProtocol::kMicroDpProto;
      if (splitting && protocol != TransferProtocol::kMicroDpProto) {
        ASSERT_EQ(collected.batch_size(), rows)
            << TransferProtocolName(protocol) << " " << config.train.ToString();
        EXPECT_EQ(collected.Tokens("prompts"), input.Tokens("prompts"));
        EXPECT_EQ(collected.Float("scores"), input.Float("scores"));
      } else if (protocol == TransferProtocol::kMicroDpProto) {
        // Splits across micro DP only; collect concatenates d copies.
        EXPECT_EQ(collected.batch_size(), rows * config.train.dp);
      } else {
        const int64_t copies =
            collected.batch_size() / rows;
        EXPECT_EQ(collected.batch_size(), copies * rows);
        EXPECT_GE(copies, 1);
      }
    }
  }
}

TEST(ProtocolPropertySweep, BroadcastGroupsReceiveIdenticalShards) {
  // Within one model-parallel block, every rank of a DP group must see the
  // same 3D_PROTO shard.
  Rng rng(888);
  for (int trial = 0; trial < 30; ++trial) {
    const RandomConfig config = DrawConfig(rng);
    ProcessGroups groups(config.train, Devices(config.train.world_size()));
    ProtocolContext context;
    context.groups = &groups;
    DataBatch input = RandomBatch(rng.UniformInt(2, 24), rng);
    std::vector<DataBatch> per_rank =
        DistributeBatch(TransferProtocol::k3dProto, input, context);
    for (int rank = 0; rank < groups.world_size(); ++rank) {
      for (int peer : groups.ModelParallelBlock(rank)) {
        EXPECT_EQ(per_rank[static_cast<size_t>(rank)].Tokens("prompts"),
                  per_rank[static_cast<size_t>(peer)].Tokens("prompts"));
      }
    }
  }
}

TEST(ProtocolPropertySweep, ShardSizesAreBalanced) {
  // No shard differs from another by more than one row under 3D_PROTO.
  Rng rng(999);
  for (int trial = 0; trial < 30; ++trial) {
    const RandomConfig config = DrawConfig(rng);
    ProcessGroups groups(config.train, Devices(config.train.world_size()));
    ProtocolContext context;
    context.groups = &groups;
    DataBatch input = RandomBatch(rng.UniformInt(1, 50), rng);
    std::vector<DataBatch> per_rank =
        DistributeBatch(TransferProtocol::k3dProto, input, context);
    int64_t min_rows = input.batch_size();
    int64_t max_rows = 0;
    for (int rank = 0; rank < groups.world_size(); ++rank) {
      min_rows = std::min(min_rows, per_rank[static_cast<size_t>(rank)].batch_size());
      max_rows = std::max(max_rows, per_rank[static_cast<size_t>(rank)].batch_size());
    }
    EXPECT_LE(max_rows - min_rows, 1);
  }
}

}  // namespace
}  // namespace hybridflow
