#include <gtest/gtest.h>

#include "src/data/alignment_task.h"
#include "src/data/data_batch.h"

namespace hybridflow {
namespace {

DataBatch MakeBatch(int64_t rows) {
  DataBatch batch;
  DataBatch::TokenColumn prompts;
  DataBatch::FloatColumn scores;
  for (int64_t i = 0; i < rows; ++i) {
    prompts.push_back({i, i + 1});
    scores.push_back({static_cast<float>(i)});
  }
  batch.SetTokens("prompts", std::move(prompts));
  batch.SetFloat("scores", std::move(scores));
  return batch;
}

TEST(DataBatchTest, ColumnsShareBatchSize) {
  DataBatch batch = MakeBatch(4);
  EXPECT_EQ(batch.batch_size(), 4);
  EXPECT_TRUE(batch.HasTokens("prompts"));
  EXPECT_TRUE(batch.HasFloat("scores"));
  EXPECT_FALSE(batch.HasFloat("missing"));
}

TEST(DataBatchTest, SliceSelectsRows) {
  DataBatch batch = MakeBatch(5);
  DataBatch slice = batch.Slice(1, 3);
  EXPECT_EQ(slice.batch_size(), 2);
  EXPECT_EQ(slice.Tokens("prompts")[0][0], 1);
  EXPECT_FLOAT_EQ(slice.Float("scores")[1][0], 2.0f);
}

TEST(DataBatchTest, SplitChunksCoversAllRowsUnevenly) {
  DataBatch batch = MakeBatch(7);
  std::vector<DataBatch> chunks = batch.SplitChunks(3);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].batch_size(), 3);  // 7 = 3 + 2 + 2.
  EXPECT_EQ(chunks[1].batch_size(), 2);
  EXPECT_EQ(chunks[2].batch_size(), 2);
}

TEST(DataBatchTest, SplitThenConcatIsIdentity) {
  DataBatch batch = MakeBatch(9);
  DataBatch round_trip = DataBatch::ConcatBatches(batch.SplitChunks(4));
  EXPECT_EQ(round_trip.batch_size(), 9);
  for (int64_t i = 0; i < 9; ++i) {
    EXPECT_EQ(round_trip.Tokens("prompts")[static_cast<size_t>(i)],
              batch.Tokens("prompts")[static_cast<size_t>(i)]);
    EXPECT_FLOAT_EQ(round_trip.Float("scores")[static_cast<size_t>(i)][0],
                    batch.Float("scores")[static_cast<size_t>(i)][0]);
  }
}

TEST(DataBatchTest, MergeColumnsAddsAndOverwrites) {
  DataBatch batch = MakeBatch(3);
  DataBatch extra;
  extra.SetFloat("scores", {{9.0f}, {9.0f}, {9.0f}});
  extra.SetFloat("rewards", {{1.0f}, {2.0f}, {3.0f}});
  batch.MergeColumns(extra);
  EXPECT_FLOAT_EQ(batch.Float("scores")[0][0], 9.0f);
  EXPECT_FLOAT_EQ(batch.Float("rewards")[2][0], 3.0f);
}

TEST(DataBatchTest, ApproxBytesCountsPayload) {
  DataBatch batch = MakeBatch(2);
  // 2 rows x 2 tokens x 8B + 2 rows x 1 float x 4B.
  EXPECT_DOUBLE_EQ(batch.ApproxBytes(), 2 * 2 * 8.0 + 2 * 4.0);
}

TEST(DataBatchTest, EmptyBatchBehaviour) {
  DataBatch batch;
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.batch_size(), 0);
  EXPECT_DOUBLE_EQ(batch.ApproxBytes(), 0.0);
}

// --- Alignment task ----------------------------------------------------------

TEST(AlignmentTaskTest, TokenRewardRules) {
  AlignmentTask task;
  EXPECT_FLOAT_EQ(task.TokenReward(3, 4), 1.0f);                  // Coherent.
  EXPECT_FLOAT_EQ(task.TokenReward(3, 7), -0.1f);                 // Incoherent.
  EXPECT_FLOAT_EQ(task.TokenReward(3, task.toxic_token()), -2.0f);  // Toxic.
  // Wrap-around coherence: after V-2 comes 0.
  EXPECT_FLOAT_EQ(task.TokenReward(task.vocab_size - 2, 0), 1.0f);
}

TEST(AlignmentTaskTest, SampleRewardIsMeanOfTokenRewards) {
  AlignmentTask task;
  std::vector<int64_t> prompt = {2};
  std::vector<int64_t> response = {3, 4, task.toxic_token()};
  // rewards: +1 (2->3), +1 (3->4), -2 (toxic) -> mean 0.
  EXPECT_NEAR(task.SampleReward(prompt, response), 0.0f, 1e-6);
}

TEST(AlignmentTaskTest, SampleCostIsToxicFraction) {
  AlignmentTask task;
  std::vector<int64_t> response = {task.toxic_token(), 1, 2, task.toxic_token()};
  EXPECT_FLOAT_EQ(task.SampleCost(response), 0.5f);
  EXPECT_FLOAT_EQ(task.SampleCost({1, 2}), 0.0f);
}

TEST(AlignmentTaskTest, MetricsMatchHandComputation) {
  AlignmentTask task;
  DataBatch::TokenColumn prompts = {{1}, {5}};
  DataBatch::TokenColumn responses = {{2, 3}, {task.toxic_token(), 6}};
  EXPECT_DOUBLE_EQ(AlignmentTask::ToxicityRate(responses, task.toxic_token()), 0.25);
  // Coherent: 1->2 yes, 2->3 yes, 5->toxic no, toxic->6 ? prev=15, (15+1)%15=1 != 6 no.
  EXPECT_DOUBLE_EQ(task.CoherenceRate(prompts, responses), 0.5);
}

TEST(PromptDatasetTest, BatchesAreDeterministicPerSeed) {
  AlignmentTask task;
  PromptDataset a(task, 42);
  PromptDataset b(task, 42);
  DataBatch batch_a = a.NextBatch(8);
  DataBatch batch_b = b.NextBatch(8);
  EXPECT_EQ(batch_a.Tokens("prompts"), batch_b.Tokens("prompts"));
}

TEST(PromptDatasetTest, PromptsNeverContainToxicToken) {
  AlignmentTask task;
  PromptDataset dataset(task, 7);
  DataBatch batch = dataset.NextBatch(64);
  for (const std::vector<int64_t>& prompt : batch.Tokens("prompts")) {
    EXPECT_EQ(static_cast<int64_t>(prompt.size()), task.prompt_len);
    for (int64_t token : prompt) {
      EXPECT_NE(token, task.toxic_token());
      EXPECT_GE(token, 0);
      EXPECT_LT(token, task.vocab_size);
    }
  }
}

TEST(PromptDatasetTest, SuccessiveBatchesDiffer) {
  AlignmentTask task;
  PromptDataset dataset(task, 7);
  EXPECT_NE(dataset.NextBatch(8).Tokens("prompts"), dataset.NextBatch(8).Tokens("prompts"));
}

}  // namespace
}  // namespace hybridflow
