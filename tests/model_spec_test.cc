#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/model/model_spec.h"

namespace hybridflow {
namespace {

// Published Llama parameter counts, in billions; we accept a few percent of
// slack because embedding/norm conventions vary.
TEST(ModelSpecTest, ParamCountsMatchPublishedSizes) {
  EXPECT_NEAR(ModelSpec::Llama7B().NumParams() / 1e9, 6.7, 0.5);
  EXPECT_NEAR(ModelSpec::Llama13B().NumParams() / 1e9, 13.0, 0.7);
  EXPECT_NEAR(ModelSpec::Llama34B().NumParams() / 1e9, 34.0, 2.0);
  EXPECT_NEAR(ModelSpec::Llama70B().NumParams() / 1e9, 69.0, 3.0);
}

TEST(ModelSpecTest, ScalarHeadSmallerThanLmHead) {
  for (const ModelSpec& spec : {ModelSpec::Llama7B(), ModelSpec::Llama70B()}) {
    EXPECT_LT(spec.NumParamsScalarHead(), spec.NumParams());
    // The difference is roughly one vocab projection.
    const double head = static_cast<double>(spec.vocab_size) * spec.hidden_size;
    EXPECT_NEAR(spec.NumParams() - spec.NumParamsScalarHead(), head, head * 0.01);
  }
}

TEST(ModelSpecTest, SeventyBWeightsAre140GB) {
  // §2.3: "aligning a 70B actor model requires transferring 140GB of model
  // weights".
  EXPECT_NEAR(ModelSpec::Llama70B().ParamBytes() / kGB, 140.0, 6.0);
}

TEST(ModelSpecTest, TrainStateIs18BytesPerParam) {
  const ModelSpec spec = ModelSpec::Llama7B();
  EXPECT_DOUBLE_EQ(spec.TrainStateBytes(), 18.0 * spec.NumParams());
}

TEST(ModelSpecTest, KvCacheBytesPerTokenGqa) {
  // 7B: full multi-head attention, 2 * 2 bytes * hidden * layers.
  const ModelSpec small = ModelSpec::Llama7B();
  EXPECT_DOUBLE_EQ(small.KvCacheBytesPerToken(), 4.0 * 4096 * 32);
  // 70B: grouped-query attention shrinks KV width by kv_heads/heads = 1/8.
  const ModelSpec big = ModelSpec::Llama70B();
  EXPECT_DOUBLE_EQ(big.KvCacheBytesPerToken(), 4.0 * (8192.0 / 8.0) * 80);
}

TEST(ModelSpecTest, FwdFlopsDominatedByMatmulTerm) {
  const ModelSpec spec = ModelSpec::Llama7B();
  const double flops = spec.FwdFlopsPerToken(0);
  EXPECT_NEAR(flops, 2.0 * spec.NumParams(), 1.0);
  // Attention adds with context.
  EXPECT_GT(spec.FwdFlopsPerToken(4096), flops);
}

TEST(ModelSpecTest, TrainFlopsAreTripleForward) {
  const ModelSpec spec = ModelSpec::Llama13B();
  EXPECT_DOUBLE_EQ(spec.TrainFlopsPerSequence(2048), 3.0 * spec.FwdFlopsPerSequence(2048));
}

TEST(ModelSpecTest, SixNDRuleApproximatelyHolds) {
  // Training FLOPs ~ 6 * params * tokens for long-context transformers.
  const ModelSpec spec = ModelSpec::Llama7B();
  const double per_token = spec.TrainFlopsPerSequence(2048) / 2048.0;
  EXPECT_NEAR(per_token / (6.0 * spec.NumParams()), 1.0, 0.15);
}

TEST(ModelSpecTest, DecodeBytesAmortizeWeightsOverBatch) {
  const ModelSpec spec = ModelSpec::Llama7B();
  const double solo = spec.DecodeBytesPerToken(1024, 1);
  const double batched = spec.DecodeBytesPerToken(1024, 64);
  EXPECT_GT(solo, batched);
  EXPECT_GT(batched, spec.KvCacheBytesPerToken() * 1024);  // KV term remains.
}

TEST(ModelSpecTest, FromBillionsSnapsToPresets) {
  EXPECT_EQ(ModelSpec::FromBillions(5.0).name, "7B");
  EXPECT_EQ(ModelSpec::FromBillions(13.0).name, "13B");
  EXPECT_EQ(ModelSpec::FromBillions(30.0).name, "34B");
  EXPECT_EQ(ModelSpec::FromBillions(65.0).name, "70B");
}

TEST(ModelSpecTest, ByNameRoundTrips) {
  for (const char* name : {"7B", "13B", "34B", "70B"}) {
    EXPECT_EQ(ModelSpec::ByName(name).name, name);
  }
}

}  // namespace
}  // namespace hybridflow
