#include <gtest/gtest.h>

#include <numeric>

#include "src/hybridengine/hybrid_engine.h"

namespace hybridflow {
namespace {

std::vector<DeviceId> Devices(int n) {
  std::vector<DeviceId> devices(static_cast<size_t>(n));
  std::iota(devices.begin(), devices.end(), 0);
  return devices;
}

// --- Table 2 closed forms vs measured engine stats ---------------------------

struct Table2Case {
  ParallelConfig train;
  GenParallelConfig gen;
};

class Table2Sweep : public ::testing::TestWithParam<Table2Case> {
 protected:
  ModelSpec model_ = ModelSpec::Llama7B();
  double M_ = ModelSpec::Llama7B().ParamBytes();
};

TEST_P(Table2Sweep, HybridFlowCommVolumeMatchesFormula) {
  const Table2Case& param = GetParam();
  const int n = param.train.world_size();
  ClusterSpec cluster = ClusterSpec::WithGpus(n);
  HybridEngine engine(model_, param.train, param.gen, ActorEngineMode::kHybridFlow, cluster,
                      Devices(n));
  TransitionStats stats = engine.TrainToGenTransition();
  // Table 2: (tp - tg*pg) / (tg*pg*tp) * M.
  const double expected =
      HybridEngine::HybridFlowCommFraction(param.train, param.gen) * M_;
  EXPECT_NEAR(stats.comm_bytes_per_gpu, expected, 1.0);
}

TEST_P(Table2Sweep, HybridFlowPeakAndRedundancyMatchFormula) {
  const Table2Case& param = GetParam();
  const int n = param.train.world_size();
  ClusterSpec cluster = ClusterSpec::WithGpus(n);
  HybridEngine engine(model_, param.train, param.gen, ActorEngineMode::kHybridFlow, cluster,
                      Devices(n));
  TransitionStats stats = engine.TrainToGenTransition();
  EXPECT_NEAR(stats.peak_param_bytes, HybridEngine::HybridFlowPeakFraction(param.gen) * M_,
              1.0);
  EXPECT_DOUBLE_EQ(stats.redundant_bytes, 0.0);
}

TEST_P(Table2Sweep, HybridFlowVMatchesFormula) {
  const Table2Case& param = GetParam();
  const int n = param.train.world_size();
  ClusterSpec cluster = ClusterSpec::WithGpus(n);
  HybridEngine engine(model_, param.train, param.gen, ActorEngineMode::kHybridFlowV, cluster,
                      Devices(n));
  TransitionStats stats = engine.TrainToGenTransition();
  EXPECT_NEAR(stats.comm_bytes_per_gpu, HybridEngine::HybridFlowVCommFraction(param.train) * M_,
              1.0);
  EXPECT_NEAR(stats.peak_param_bytes, M_, 1.0);
  // Worst-rank redundancy equals the training shard whenever some GPU has
  // zero overlap (true for every non-identity regrouping in this sweep).
  if (param.gen.tp * param.gen.pp < param.train.model_parallel_size()) {
    EXPECT_NEAR(stats.redundant_bytes,
                HybridEngine::HybridFlowVRedundancyFraction(param.train) * M_, M_ * 1e-9);
  }
}

TEST_P(Table2Sweep, DsChatMatchesFormula) {
  const Table2Case& param = GetParam();
  const int n = param.train.world_size();
  ClusterSpec cluster = ClusterSpec::WithGpus(n);
  HybridEngine engine(model_, param.train, param.gen, ActorEngineMode::kDsChat, cluster,
                      Devices(n));
  TransitionStats stats = engine.TrainToGenTransition();
  EXPECT_NEAR(stats.comm_bytes_per_gpu, HybridEngine::DsChatCommFraction(param.train) * M_,
              1.0);
  EXPECT_NEAR(stats.peak_param_bytes, M_, 1.0);
  EXPECT_NEAR(stats.redundant_bytes, HybridEngine::DsChatRedundancyFraction(param.train) * M_,
              1.0);
}

TEST_P(Table2Sweep, HybridFlowStrictlyCheaperThanVanilla) {
  // The §5.4 ordering: HybridFlow < HybridFlow-V < DS-Chat in comm volume,
  // and zero redundancy only for HybridFlow.
  const Table2Case& param = GetParam();
  const double hf = HybridEngine::HybridFlowCommFraction(param.train, param.gen);
  const double hfv = HybridEngine::HybridFlowVCommFraction(param.train);
  const double ds = HybridEngine::DsChatCommFraction(param.train);
  EXPECT_LT(hf, hfv);
  if (param.train.dp > 1) {
    EXPECT_LT(hfv, ds);
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, Table2Sweep,
                         ::testing::Values(Table2Case{{1, 4, 2}, {1, 2}},
                                           Table2Case{{1, 8, 2}, {1, 2}},
                                           Table2Case{{1, 8, 2}, {1, 4}},
                                           Table2Case{{2, 4, 2}, {1, 2}},
                                           Table2Case{{2, 4, 2}, {2, 2}},
                                           Table2Case{{2, 8, 4}, {1, 4}},
                                           Table2Case{{4, 8, 4}, {2, 2}}));

// --- Engine behaviour -------------------------------------------------------

TEST(HybridEngineTest, SharedModeHasNoTransition) {
  ClusterSpec cluster = ClusterSpec::WithGpus(8);
  HybridEngine engine(ModelSpec::Llama7B(), {1, 4, 2}, {1, 4}, ActorEngineMode::kShared,
                      cluster, Devices(8));
  TransitionStats stats = engine.TrainToGenTransition();
  EXPECT_DOUBLE_EQ(stats.seconds, 0.0);
  EXPECT_DOUBLE_EQ(stats.comm_bytes_per_gpu, 0.0);
  EXPECT_EQ(engine.NumGenReplicas(), 2);  // = training dp.
}

TEST(HybridEngineTest, GenReplicasCountMicroDp) {
  ClusterSpec cluster = ClusterSpec::WithGpus(16);
  HybridEngine engine(ModelSpec::Llama7B(), {1, 8, 2}, {1, 2}, ActorEngineMode::kHybridFlow,
                      cluster, Devices(16));
  // d_g = 8/2 = 4 micro replicas per DP replica, d = 2 -> 8 replicas.
  EXPECT_EQ(engine.NumGenReplicas(), 8);
  std::vector<DeviceId> replica = engine.GenReplicaDevices(0);
  EXPECT_EQ(replica.size(), 2u);
}

TEST(HybridEngineTest, GenReplicaDevicesPartitionTheAllocation) {
  ClusterSpec cluster = ClusterSpec::WithGpus(16);
  HybridEngine engine(ModelSpec::Llama7B(), {2, 4, 2}, {1, 2}, ActorEngineMode::kHybridFlow,
                      cluster, Devices(16));
  std::multiset<DeviceId> all;
  for (int replica = 0; replica < engine.NumGenReplicas(); ++replica) {
    for (DeviceId device : engine.GenReplicaDevices(replica)) {
      all.insert(device);
    }
  }
  EXPECT_EQ(static_cast<int>(all.size()), 16);
  EXPECT_EQ(all.count(3), 1u);  // Each device in exactly one replica.
}

TEST(HybridEngineTest, DsChatTilesWholeAllocation) {
  ClusterSpec cluster = ClusterSpec::WithGpus(16);
  HybridEngine engine(ModelSpec::Llama7B(), {1, 1, 16}, {1, 4}, ActorEngineMode::kDsChat,
                      cluster, Devices(16));
  EXPECT_EQ(engine.NumGenReplicas(), 4);
  EXPECT_EQ(engine.GenReplicaDevices(0), (std::vector<DeviceId>{0, 1, 2, 3}));
  EXPECT_EQ(engine.GenReplicaDevices(3), (std::vector<DeviceId>{12, 13, 14, 15}));
}

TEST(HybridEngineTest, TwoCopiesBroadcastsFullModel) {
  ClusterSpec cluster = ClusterSpec::WithGpus(16);
  HybridEngine engine(ModelSpec::Llama7B(), {1, 1, 8}, {1, 2}, ActorEngineMode::kTwoCopies,
                      cluster, Devices(8), {8, 9, 10, 11});
  TransitionStats stats = engine.TrainToGenTransition();
  EXPECT_NEAR(stats.comm_bytes_per_gpu, ModelSpec::Llama7B().ParamBytes(), 1.0);
  EXPECT_GT(stats.seconds, 0.0);
  EXPECT_EQ(engine.NumGenReplicas(), 2);
}

TEST(HybridEngineTest, GenToTrainIsFree) {
  ClusterSpec cluster = ClusterSpec::WithGpus(8);
  HybridEngine engine(ModelSpec::Llama7B(), {1, 4, 2}, {1, 2}, ActorEngineMode::kHybridFlow,
                      cluster, Devices(8));
  EXPECT_DOUBLE_EQ(engine.GenToTrainTransition().seconds, 0.0);
}

TEST(HybridEngineTest, CrossNodeTransitionSlowerThanIntraNode) {
  // A 70B actor on 16 GPUs: micro DP groups span nodes under 2-8-1 training
  // with 1-8 generation, making the all-gather cross-node.
  ModelSpec model = ModelSpec::Llama70B();
  ClusterSpec cluster = ClusterSpec::WithGpus(16);
  HybridEngine cross(model, {2, 8, 1}, {1, 8}, ActorEngineMode::kHybridFlow, cluster,
                     Devices(16));
  ClusterSpec one_node = ClusterSpec::WithGpus(8);
  HybridEngine intra(model, {1, 8, 1}, {1, 4}, ActorEngineMode::kHybridFlow, one_node,
                     Devices(8));
  EXPECT_GT(cross.TrainToGenTransition().seconds, intra.TrainToGenTransition().seconds);
}

TEST(HybridEngineTest, ModeNames) {
  EXPECT_STREQ(ActorEngineModeName(ActorEngineMode::kHybridFlow), "hybridflow");
  EXPECT_STREQ(ActorEngineModeName(ActorEngineMode::kDsChat), "ds-chat");
  EXPECT_STREQ(ActorEngineModeName(ActorEngineMode::kTwoCopies), "two-copies");
}

}  // namespace
}  // namespace hybridflow
