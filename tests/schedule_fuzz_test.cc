// Determinism contract of the seeded schedule fuzzer
// (src/analysis/schedule_fuzz.h): for a fixed seed, a thread's decision
// sequence is a pure function of (seed, thread ordinal), so two
// single-threaded runs with the same seed capture bit-identical traces.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/analysis/schedule_fuzz.h"
#include "src/common/annotations.h"

namespace hybridflow {
namespace {

using Injection = ScheduleFuzzer::Injection;

#if HF_SYNC_CONTRACTS_ENABLED

// Drives kDraws lock/unlock rounds through the annotated Mutex (each Lock
// is an injection site) and returns the captured decision trace.
std::vector<Injection> CaptureTrace(uint64_t seed, int draws) {
  ScheduleFuzzer& fuzzer = ScheduleFuzzer::Global();
  fuzzer.EnableWithSeed(seed);
  fuzzer.StartCaptureForCurrentThread();
  Mutex mutex("fuzz_probe");
  for (int i = 0; i < draws; ++i) {
    MutexLock lock(mutex);
  }
  std::vector<Injection> trace = fuzzer.StopCaptureForCurrentThread();
  fuzzer.Disable();
  return trace;
}

TEST(ScheduleFuzzTest, SameSeedSameTrace) {
  const std::vector<Injection> first = CaptureTrace(42, 256);
  const std::vector<Injection> second = CaptureTrace(42, 256);
  ASSERT_EQ(first.size(), 256u) << "every decision (including kNone) is recorded";
  EXPECT_TRUE(first == second) << "same seed must reproduce the exact trace";
}

TEST(ScheduleFuzzTest, DifferentSeedDifferentTrace) {
  const std::vector<Injection> a = CaptureTrace(42, 256);
  const std::vector<Injection> b = CaptureTrace(1337, 256);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_FALSE(a == b) << "distinct seeds should explore distinct schedules";
}

TEST(ScheduleFuzzTest, TraceContainsRealInjections) {
  // With 2/16 yield + 2/16 sleep odds, 256 draws yield ~64 injections;
  // zero would mean the perturbation is wired up but inert.
  const std::vector<Injection> trace = CaptureTrace(7, 256);
  int injected = 0;
  for (const Injection& decision : trace) {
    EXPECT_EQ(decision.site, ScheduleFuzzer::Site::kMutexLock);
    if (decision.action != ScheduleFuzzer::Action::kNone) {
      ++injected;
    }
    if (decision.action == ScheduleFuzzer::Action::kSleep) {
      EXPECT_GE(decision.sleep_us, 1u);
      EXPECT_LE(decision.sleep_us, 50u);
    } else {
      EXPECT_EQ(decision.sleep_us, 0u);
    }
  }
  EXPECT_GT(injected, 0);
  EXPECT_LT(injected, 256);
}

TEST(ScheduleFuzzTest, DisabledMeansNoDecisions) {
  ScheduleFuzzer& fuzzer = ScheduleFuzzer::Global();
  fuzzer.Disable();
  fuzzer.StartCaptureForCurrentThread();
  Mutex mutex("fuzz_off_probe");
  for (int i = 0; i < 16; ++i) {
    MutexLock lock(mutex);
  }
  EXPECT_TRUE(fuzzer.StopCaptureForCurrentThread().empty());
}

#else  // !HF_SYNC_CONTRACTS_ENABLED

TEST(ScheduleFuzzTest, SkippedWhenContractsCompiledOut) {
  GTEST_SKIP() << "HF_SYNC_CONTRACTS disabled in this build";
}

#endif  // HF_SYNC_CONTRACTS_ENABLED

TEST(ScheduleFuzzTest, ParseSeedAcceptsDecimal) {
  uint64_t seed = 0;
  EXPECT_TRUE(ScheduleFuzzer::ParseSeed("0", &seed));
  EXPECT_EQ(seed, 0u);
  EXPECT_TRUE(ScheduleFuzzer::ParseSeed("1337", &seed));
  EXPECT_EQ(seed, 1337u);
  EXPECT_TRUE(ScheduleFuzzer::ParseSeed("18446744073709551615", &seed));
  EXPECT_EQ(seed, 18446744073709551615ull);
}

TEST(ScheduleFuzzTest, ParseSeedRejectsGarbage) {
  uint64_t seed = 0;
  EXPECT_FALSE(ScheduleFuzzer::ParseSeed(nullptr, &seed));
  EXPECT_FALSE(ScheduleFuzzer::ParseSeed("", &seed));
  EXPECT_FALSE(ScheduleFuzzer::ParseSeed("abc", &seed));
  EXPECT_FALSE(ScheduleFuzzer::ParseSeed("12x", &seed));
  EXPECT_FALSE(ScheduleFuzzer::ParseSeed("-1", &seed));
  EXPECT_FALSE(ScheduleFuzzer::ParseSeed(" 7", &seed));
}

}  // namespace
}  // namespace hybridflow
