#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/rlhf/losses.h"
#include "src/tensor/ops.h"

namespace hybridflow {
namespace {

TEST(RowSumTest, ForwardAndGrad) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6}, true);
  Tensor sums = RowSum(a);
  EXPECT_EQ(sums.dim(0), 2);
  EXPECT_FLOAT_EQ(sums.at(0), 6.0f);
  EXPECT_FLOAT_EQ(sums.at(1), 15.0f);
  Tensor weighted = Sum(Mul(sums, Tensor::FromData({2}, {1.0f, 2.0f})));
  weighted.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 1.0f);
  EXPECT_FLOAT_EQ(a.grad()[3], 2.0f);
}

TEST(MeanEntropyTest, UniformLogitsGiveLogV) {
  Tensor logits = Tensor::Zeros({2, 4});
  EXPECT_NEAR(MeanEntropy(logits).item(), std::log(4.0), 1e-5);
}

TEST(MeanEntropyTest, PeakedLogitsGiveNearZero) {
  Tensor logits = Tensor::FromData({1, 3}, {30.0f, 0.0f, 0.0f});
  EXPECT_NEAR(MeanEntropy(logits).item(), 0.0, 1e-4);
}

TEST(MeanEntropyTest, GradientFlattensDistribution) {
  // Maximizing entropy (minimizing -entropy) should push logits toward
  // uniform: the largest logit gets a negative gradient under -entropy.
  Tensor logits = Tensor::FromData({1, 3}, {2.0f, 0.0f, 0.0f}, true);
  Tensor loss = Neg(MeanEntropy(logits));
  loss.Backward();
  EXPECT_GT(logits.grad()[0], 0.0f);   // Loss decreases when logit 0 shrinks.
  EXPECT_LT(logits.grad()[1], 0.0f);
}

TEST(MeanEntropyTest, BoundedByLogVocab) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    Tensor logits = Tensor::Randn({4, 8}, rng, 3.0f, /*requires_grad=*/false);
    const double entropy = MeanEntropy(logits).item();
    EXPECT_GE(entropy, 0.0);
    EXPECT_LE(entropy, std::log(8.0) + 1e-5);
  }
}

}  // namespace
}  // namespace hybridflow
