// One-step-off asynchronous PPO (docs/ASYNC_PIPELINE.md).
//
// The contract under test, on both planes:
//   - staleness 0 degenerates to the synchronous order: bitwise-identical
//     data plane (weights, metrics) AND bit-identical DES schedule;
//   - staleness 1 trains on one-update-old experience: numerics drift, but
//     the behavior-policy log-prob snapshot keeps KL/loss drift bounded;
//   - generation genuinely overlaps experience-prep/training on the DES
//     when the pools are disjoint (OpenRLHF pattern), with a clean
//     timeline and >= 1.3x makespan improvement on a generation-heavy
//     workload;
//   - DrainIteration flushes the staleness queue without issuing new
//     generations.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/analysis/timeline_checker.h"
#include "src/baselines/system_builder.h"

namespace hybridflow {
namespace {

SystemBuildConfig AsyncDataPlaneConfig() {
  SystemBuildConfig config;
  config.system = RlhfSystem::kHybridFlow;
  config.algorithm = RlhfAlgorithm::kPpo;
  config.num_gpus = 8;
  config.real_compute = true;
  config.real_batch = 32;
  config.seed = 77;
  config.workload.global_batch = 128;
  config.workload.prompt_len = 256;
  config.workload.response_len = 256;
  config.rollout.mode = RolloutMode::kContinuous;
  return config;
}

// Generation-dominated timing workload on disjoint pools: OpenRLHF keeps
// the rollout actor copy on its own GPUs, so iteration k's generation can
// run concurrently with iteration k-1's training on the DES.
SystemBuildConfig AsyncTimingConfig() {
  SystemBuildConfig config;
  config.system = RlhfSystem::kOpenRlhf;
  config.algorithm = RlhfAlgorithm::kPpo;
  config.num_gpus = 16;
  config.real_compute = false;
  config.seed = 5;
  config.workload.global_batch = 512;
  config.workload.prompt_len = 1024;
  config.workload.response_len = 1024;
  // More optimizer steps per iteration: training long enough to hide a
  // solid fraction of generation behind it (the pipelining bound
  // (G + T) / max(G, T) is best when the stages are balanced).
  config.workload.updates_per_iteration = 16;
  config.rollout.mode = RolloutMode::kContinuous;
  return config;
}

std::vector<float> FlattenWeights(const PolicyNet& net) {
  std::vector<float> flat;
  for (const Tensor& parameter : net.Parameters()) {
    flat.insert(flat.end(), parameter.data().begin(), parameter.data().end());
  }
  return flat;
}

TEST(AsyncPipelineTest, AsyncStalenessZeroIsBitwiseIdenticalToSync) {
  SystemBuildConfig sync_config = AsyncDataPlaneConfig();
  SystemBuildConfig async_config = AsyncDataPlaneConfig();
  async_config.async_pipeline = true;
  async_config.async_staleness = 0;

  RlhfSystemInstance sync_system = BuildSystem(sync_config);
  RlhfSystemInstance async_system = BuildSystem(async_config);
  ASSERT_TRUE(sync_system.feasible);
  ASSERT_TRUE(async_system.feasible);

  for (int i = 0; i < 3; ++i) {
    const IterationMetrics sync_metrics = sync_system.RunIteration();
    const IterationMetrics async_metrics = async_system.RunIteration();
    // Exact equality, not EXPECT_NEAR: staleness 0 runs the same op
    // sequence on the same RNG streams, so every float must match.
    EXPECT_EQ(sync_metrics.actor_loss, async_metrics.actor_loss) << "iteration " << i;
    EXPECT_EQ(sync_metrics.critic_loss, async_metrics.critic_loss) << "iteration " << i;
    EXPECT_EQ(sync_metrics.mean_kl, async_metrics.mean_kl) << "iteration " << i;
    EXPECT_EQ(sync_metrics.mean_reward, async_metrics.mean_reward) << "iteration " << i;
    EXPECT_EQ(sync_metrics.iteration_seconds, async_metrics.iteration_seconds)
        << "iteration " << i;
    EXPECT_EQ(async_metrics.async_queue_depth, 0) << "iteration " << i;
  }
  EXPECT_EQ(async_system.program->pending_experience(), 0);
  EXPECT_EQ(FlattenWeights(sync_system.actor->net()),
            FlattenWeights(async_system.actor->net()));
  EXPECT_EQ(CompareTraces(sync_system.controller->cluster().trace(),
                          async_system.controller->cluster().trace()),
            "");
}

TEST(AsyncPipelineTest, AsyncStalenessOneHasBoundedDrift) {
  SystemBuildConfig sync_config = AsyncDataPlaneConfig();
  SystemBuildConfig async_config = AsyncDataPlaneConfig();
  async_config.async_pipeline = true;
  async_config.async_staleness = 1;

  RlhfSystemInstance sync_system = BuildSystem(sync_config);
  RlhfSystemInstance async_system = BuildSystem(async_config);
  ASSERT_TRUE(sync_system.feasible);
  ASSERT_TRUE(async_system.feasible);

  const int iterations = 6;
  double sync_kl = 0.0;
  double async_kl = 0.0;
  double sync_loss = 0.0;
  double async_loss = 0.0;
  for (int i = 0; i < iterations; ++i) {
    const IterationMetrics sync_metrics = sync_system.RunIteration();
    const IterationMetrics async_metrics = async_system.RunIteration();
    sync_kl += sync_metrics.mean_kl / iterations;
    async_kl += async_metrics.mean_kl / iterations;
    sync_loss += sync_metrics.actor_loss / iterations;
    async_loss += async_metrics.actor_loss / iterations;
    // Iteration 0 consumes the priming batch, generated moments earlier by
    // the un-updated policy: staleness 0. Steady state is one-step-off.
    EXPECT_EQ(async_metrics.async_staleness, i == 0 ? 0 : 1) << "iteration " << i;
    EXPECT_EQ(async_metrics.async_queue_depth, 1) << "iteration " << i;
  }
  // One-step-off experience changes the numerics...
  EXPECT_NE(sync_kl, async_kl);
  // ...but the behavior-policy snapshot keeps the PPO ratio honest, so the
  // run stays in the same regime as the synchronous one (loose bounds: a
  // broken snapshot — e.g. log-probs recomputed under the updated policy —
  // collapses the ratio and visibly shifts both).
  EXPECT_LT(std::fabs(sync_kl - async_kl), 0.05) << sync_kl << " vs " << async_kl;
  EXPECT_LT(std::fabs(sync_loss - async_loss), 0.25) << sync_loss << " vs " << async_loss;
  EXPECT_EQ(async_system.program->pending_experience(), 1);
}

TEST(AsyncPipelineTest, AsyncDrainFlushesQueueWithoutGenerating) {
  SystemBuildConfig config = AsyncDataPlaneConfig();
  config.async_pipeline = true;
  config.async_staleness = 1;
  RlhfSystemInstance system = BuildSystem(config);
  ASSERT_TRUE(system.feasible);

  system.RunIteration();
  system.RunIteration();
  ASSERT_EQ(system.program->pending_experience(), 1);

  const size_t trace_before = system.controller->cluster().trace().size();
  const IterationMetrics drained = system.program->DrainIteration();
  EXPECT_EQ(system.program->pending_experience(), 0);
  EXPECT_EQ(drained.async_staleness, 1);
  EXPECT_EQ(drained.async_queue_depth, 0);
  EXPECT_GT(drained.iteration_seconds, 0.0);

  // The flush path trains on the staged batch but must not issue a
  // replacement generation.
  const std::vector<TraceSpan>& trace = system.controller->cluster().trace();
  for (size_t i = trace_before; i < trace.size(); ++i) {
    EXPECT_NE(trace[i].category, "generate") << trace[i].name;
  }

  // The next RunIteration re-primes the queue and keeps going.
  const IterationMetrics next = system.RunIteration();
  EXPECT_GT(next.iteration_seconds, 0.0);
  EXPECT_EQ(system.program->pending_experience(), 1);
}

TEST(AsyncPipelineTest, AsyncOverlapsGenerationWithTrainingOnTheDes) {
  SystemBuildConfig sync_config = AsyncTimingConfig();
  SystemBuildConfig async_config = AsyncTimingConfig();
  async_config.async_pipeline = true;
  async_config.async_staleness = 1;

  RlhfSystemInstance sync_system = BuildSystem(sync_config);
  RlhfSystemInstance async_system = BuildSystem(async_config);
  ASSERT_TRUE(sync_system.feasible);
  ASSERT_TRUE(async_system.feasible);

  const int iterations = 4;
  double sync_seconds = 0.0;
  double async_seconds = 0.0;
  double min_overlap = 1.0;
  for (int i = 0; i < iterations; ++i) {
    const double sync_iter = sync_system.RunIteration().iteration_seconds;
    const IterationMetrics async_metrics = async_system.RunIteration();
    if (i == 0) {
      // The priming iteration pays for two generations back-to-back (the
      // drain at the end gets the time back); compare steady state.
      continue;
    }
    sync_seconds += sync_iter;
    async_seconds += async_metrics.iteration_seconds;
    min_overlap = std::min(min_overlap, async_metrics.overlap_fraction);
  }
  // Genuine overlap: generation spans ran concurrently with infer/train
  // spans on the steady-state iterations, and the makespan improved by the
  // pipelining bound (>= 1.3x on this generation-dominated workload).
  EXPECT_GT(min_overlap, 0.1);
  EXPECT_GE(sync_seconds / async_seconds, 1.3)
      << "sync " << sync_seconds << "s vs async " << async_seconds << "s";

  // The overlapped schedule must still be resource-sane: no device runs
  // two spans at once, every span sits inside one registered pool.
  TimelineChecker checker(async_system.controller->spec());
  std::vector<DeviceId> weight_sync_devices;
  for (const auto& pool : async_system.controller->pools()) {
    checker.RegisterGroup(pool->name(), pool->devices());
    // OpenRLHF's per-iteration weight broadcast spans the training pool and
    // the dedicated rollout pool together: register the union as a group.
    if (pool->name() == "actor_train" || pool->name() == "actor_gen") {
      weight_sync_devices.insert(weight_sync_devices.end(), pool->devices().begin(),
                                 pool->devices().end());
    }
  }
  checker.RegisterGroup("actor_weight_sync", weight_sync_devices);
  const std::vector<TimelineViolation> violations =
      checker.Check(async_system.controller->cluster());
  EXPECT_TRUE(violations.empty()) << FormatViolations(violations);
}

TEST(AsyncPipelineTest, AsyncValidateRejectsStaticRolloutEngine) {
  SystemBuildConfig config = AsyncDataPlaneConfig();
  config.async_pipeline = true;
  config.rollout.mode = RolloutMode::kStatic;
  const std::string error = ValidateSystemConfig(config);
  EXPECT_NE(error, "");
  EXPECT_NE(error.find("rollout.mode"), std::string::npos) << error;

  config.rollout.mode = RolloutMode::kContinuous;
  EXPECT_EQ(ValidateSystemConfig(config), "");

  config.async_staleness = -1;
  EXPECT_NE(ValidateSystemConfig(config), "");
  config.async_staleness = 1;

  config.async_pipeline = false;
  config.rollout.mode = RolloutMode::kStatic;
  EXPECT_EQ(ValidateSystemConfig(config), "");
}

}  // namespace
}  // namespace hybridflow
