// Tests for the per-sequence lifecycle event log (src/obs/seq_events.h),
// its scheduler/engine/timing-simulator recording hooks, and the TTFT /
// TPOT / queue-delay / stall derivations built on it. Suite names contain
// "Latency" so tools/check.sh picks them up for the TSan and schedule-fuzz
// phases. The load-bearing properties:
//   * recording must not perturb behavior — greedy decode output and the
//     timing simulator's DES results are bitwise identical with the log
//     attached and detached;
//   * the derived latencies must match hand-computed values on a known
//     event stream;
//   * the JSONL export must be valid line-JSON for arbitrary event content.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/nn/policy_net.h"
#include "src/obs/dual_trace.h"
#include "src/obs/json_util.h"
#include "src/obs/seq_events.h"
#include "src/rollout/engine.h"
#include "src/rollout/scheduler.h"
#include "src/rollout/sequence.h"
#include "src/rollout/timing.h"
#include "src/sim/topology.h"

namespace hybridflow {
namespace {

SeqEvent MakeEvent(int64_t run, int64_t seq, SeqEventKind kind, double t, int64_t tokens = 0,
                   int64_t step = 0) {
  SeqEvent event;
  event.run = run;
  event.seq = seq;
  event.kind = kind;
  event.step = step;
  event.tokens = tokens;
  event.sim_seconds = t;
  event.wall_us = t * 1e6;
  return event;
}

TEST(SeqLatencyTest, EventKindNamesRoundTrip) {
  for (const SeqEventKind kind :
       {SeqEventKind::kEnqueue, SeqEventKind::kAdmit, SeqEventKind::kPrefillChunk,
        SeqEventKind::kFirstToken, SeqEventKind::kDecodeStep, SeqEventKind::kPreempt,
        SeqEventKind::kResume, SeqEventKind::kFinish, SeqEventKind::kCancel,
        SeqEventKind::kExpire}) {
    SeqEventKind parsed;
    ASSERT_TRUE(ParseSeqEventKind(SeqEventKindName(kind), &parsed)) << SeqEventKindName(kind);
    EXPECT_EQ(parsed, kind);
  }
  SeqEventKind parsed;
  EXPECT_FALSE(ParseSeqEventKind("not-a-kind", &parsed));
  EXPECT_FALSE(ParseSeqEventKind("", &parsed));
}

TEST(SeqLatencyTest, DerivesHandComputedLatenciesFromOneStream) {
  // One sequence through a full preempt/resume lifecycle, timestamps in
  // sim-seconds: enqueue@1, admit@3, first token@6, decode@7, preempt@8,
  // resume@10 (re-prefills 5 tokens), decode@11, finish@11.
  std::vector<SeqEvent> events;
  events.push_back(MakeEvent(0, 4, SeqEventKind::kEnqueue, 1.0, 8));
  events.push_back(MakeEvent(0, 4, SeqEventKind::kAdmit, 3.0, 8));
  events.push_back(MakeEvent(0, 4, SeqEventKind::kPrefillChunk, 3.0, 4));
  events.push_back(MakeEvent(0, 4, SeqEventKind::kFirstToken, 6.0, 1));
  events.push_back(MakeEvent(0, 4, SeqEventKind::kDecodeStep, 7.0, 2));
  events.push_back(MakeEvent(0, 4, SeqEventKind::kPreempt, 8.0, 6));
  events.push_back(MakeEvent(0, 4, SeqEventKind::kResume, 10.0, 5));
  events.push_back(MakeEvent(0, 4, SeqEventKind::kDecodeStep, 11.0, 3));
  events.push_back(MakeEvent(0, 4, SeqEventKind::kFinish, 11.0, 3));

  const std::vector<SeqLatency> latencies = DeriveSeqLatencies(events, /*wall=*/false);
  ASSERT_EQ(latencies.size(), 1u);
  const SeqLatency& latency = latencies[0];
  EXPECT_EQ(latency.run, 0);
  EXPECT_EQ(latency.seq, 4);
  EXPECT_EQ(latency.tokens, 3);
  EXPECT_EQ(latency.preemptions, 1);
  EXPECT_EQ(latency.recomputed_tokens, 5);
  EXPECT_TRUE(latency.finished);
  EXPECT_DOUBLE_EQ(latency.queue_delay, 2.0);       // 3 - 1
  EXPECT_DOUBLE_EQ(latency.ttft, 5.0);              // 6 - 1
  EXPECT_DOUBLE_EQ(latency.tpot, 2.5);              // (11 - 6) / (3 - 1)
  EXPECT_DOUBLE_EQ(latency.preemption_stall, 2.0);  // 10 - 8
  EXPECT_DOUBLE_EQ(latency.total, 10.0);            // 11 - 1

  // The wall-plane derivation uses the microsecond stamps instead.
  const std::vector<SeqLatency> wall = DeriveSeqLatencies(events, /*wall=*/true);
  ASSERT_EQ(wall.size(), 1u);
  EXPECT_DOUBLE_EQ(wall[0].ttft, 5.0e6);
}

TEST(SeqLatencyTest, SummaryDigestsSliceByEligibility) {
  // Three sequences: one full decode, one single-token (no TPOT), one
  // never admitted (no TTFT / queue delay). TPOT and stall digests must
  // only cover eligible sequences.
  std::vector<SeqEvent> events;
  events.push_back(MakeEvent(0, 0, SeqEventKind::kEnqueue, 0.0));
  events.push_back(MakeEvent(0, 0, SeqEventKind::kAdmit, 1.0));
  events.push_back(MakeEvent(0, 0, SeqEventKind::kFirstToken, 2.0, 1));
  events.push_back(MakeEvent(0, 0, SeqEventKind::kDecodeStep, 4.0, 2));
  events.push_back(MakeEvent(0, 0, SeqEventKind::kFinish, 4.0, 2));
  events.push_back(MakeEvent(0, 1, SeqEventKind::kEnqueue, 0.0));
  events.push_back(MakeEvent(0, 1, SeqEventKind::kAdmit, 2.0));
  events.push_back(MakeEvent(0, 1, SeqEventKind::kFirstToken, 6.0, 1));
  events.push_back(MakeEvent(0, 1, SeqEventKind::kFinish, 6.0, 1));
  events.push_back(MakeEvent(0, 2, SeqEventKind::kEnqueue, 0.0));

  const SeqLatencySummary summary =
      SummarizeSeqLatencies(DeriveSeqLatencies(events, /*wall=*/false));
  EXPECT_EQ(summary.sequences, 3);
  EXPECT_EQ(summary.finished, 2);
  EXPECT_EQ(summary.preemptions, 0);
  EXPECT_EQ(summary.ttft.count, 2u);         // Sequences that emitted a token.
  EXPECT_EQ(summary.tpot.count, 1u);         // Needs >= 2 tokens.
  EXPECT_EQ(summary.queue_delay.count, 2u);  // Sequences that were admitted.
  EXPECT_EQ(summary.preemption_stall.count, 0u);
  EXPECT_DOUBLE_EQ(summary.ttft.max, 6.0);
  EXPECT_DOUBLE_EQ(summary.tpot.p50, 2.0);  // (4 - 2) / (2 - 1) for seq 0.
}

TEST(SeqLatencyTest, DigestUsesNearestRankOnSortedValues) {
  std::vector<double> values;
  for (int i = 100; i >= 1; --i) {
    values.push_back(static_cast<double>(i));
  }
  const LatencyDigest digest = DigestValues(std::move(values));
  EXPECT_EQ(digest.count, 100u);
  EXPECT_DOUBLE_EQ(digest.p50, 50.0);
  EXPECT_DOUBLE_EQ(digest.p90, 90.0);
  EXPECT_DOUBLE_EQ(digest.p99, 99.0);
  EXPECT_DOUBLE_EQ(digest.max, 100.0);
  EXPECT_DOUBLE_EQ(digest.mean, 50.5);
}

TEST(SeqLatencyTest, JsonlExportIsValidForRandomizedEvents) {
  // Property test: whatever the event content (any kind, negative /
  // fractional / huge timestamps), every exported line must be standalone
  // valid JSON and carry the expected keys.
  Rng rng(4242);
  std::vector<SeqEvent> events;
  const SeqEventKind kinds[] = {SeqEventKind::kEnqueue,    SeqEventKind::kAdmit,
                                SeqEventKind::kPrefillChunk, SeqEventKind::kFirstToken,
                                SeqEventKind::kDecodeStep, SeqEventKind::kPreempt,
                                SeqEventKind::kResume,     SeqEventKind::kFinish};
  for (int i = 0; i < 500; ++i) {
    SeqEvent event;
    event.run = rng.UniformInt(0, 7);
    event.seq = rng.UniformInt(-3, 1000000);
    event.kind = kinds[rng.UniformInt(0, 7)];
    event.step = rng.UniformInt(0, 100000);
    event.tokens = rng.UniformInt(-1, 1 << 20);
    event.sim_seconds = rng.Uniform(-1.0, 1e9);
    event.wall_us = rng.Uniform(0.0, 1e15);
    events.push_back(event);
  }
  const std::string jsonl = SeqEventLog::ToJsonl(events);
  std::istringstream lines(jsonl);
  size_t line_count = 0;
  for (std::string line; std::getline(lines, line); ++line_count) {
    std::string error;
    ASSERT_TRUE(JsonValidate(line, &error)) << line << ": " << error;
    EXPECT_NE(line.find("\"kind\":\""), std::string::npos);
    EXPECT_NE(line.find("\"wall_us\":"), std::string::npos);
  }
  EXPECT_EQ(line_count, events.size());
}

TEST(SeqLatencyTest, ConcurrentRecordingIsExact) {
  // TSan-relevant: many threads record into one shared log, each under its
  // own run id (the per-rank data-plane sharing pattern). No event may be
  // lost or cross-tagged.
  SeqEventLog log;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads, [&log](int) {
    const int64_t run = log.BeginRun();
    for (int i = 0; i < kPerThread; ++i) {
      SeqEvent event;
      event.run = run;
      event.seq = i;
      event.kind = i == 0 ? SeqEventKind::kEnqueue : SeqEventKind::kDecodeStep;
      event.tokens = i;
      log.RecordNow(event);
    }
  });
  EXPECT_EQ(log.size(), static_cast<size_t>(kThreads * kPerThread));
  for (int64_t run = 0; run < kThreads; ++run) {
    const std::vector<SeqEvent> events = log.SnapshotRun(run);
    ASSERT_EQ(events.size(), static_cast<size_t>(kPerThread)) << "run " << run;
    // Record order is preserved within a run.
    for (int i = 0; i < kPerThread; ++i) {
      ASSERT_EQ(events[static_cast<size_t>(i)].seq, i) << "run " << run;
    }
  }
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_GE(log.BeginRun(), kThreads);  // Run ids keep advancing past Clear.
}

// --- Scheduler hooks ----------------------------------------------------------

KvBlockConfig TightKvConfig() {
  KvBlockConfig config;
  config.block_tokens = 2;
  config.num_blocks = 6;
  config.bytes_per_token = 1.0;
  return config;
}

TEST(SeqLatencyTest, SchedulerHooksEmitOrderedLifecycleUnderPreemption) {
  // Same tight-KV drain as RolloutSchedulerTest.PreemptsYoungestAndDrains-
  // Everything, with the event log attached: every sequence's stream must
  // be well-formed (enqueue first, admit before tokens, preempts matched
  // by resumes, finish last) and the hook counters must agree with the
  // scheduler's own stats.
  DistributedKvManager kv(2, TightKvConfig());
  std::vector<RolloutSequence> sequences(4);
  for (int64_t id = 0; id < 4; ++id) {
    sequences[static_cast<size_t>(id)].id = id;
    sequences[static_cast<size_t>(id)].prompt_tokens = 2;
    sequences[static_cast<size_t>(id)].target_new_tokens = 6;
  }
  SeqEventLog log;
  RolloutScheduler scheduler({}, &kv, &sequences);
  const int64_t run = log.BeginRun();
  scheduler.SetEventLog(&log, run);
  for (int64_t id = 0; id < 4; ++id) {
    scheduler.Enqueue(id);
  }
  double sim_now = 0.0;
  while (scheduler.HasWork()) {
    scheduler.SetSimNow(sim_now);
    const StepPlan plan = scheduler.BeginStep();
    ASSERT_FALSE(plan.empty());
    sim_now += 1.0;
    scheduler.SetSimNow(sim_now);
    scheduler.CommitStep(plan, /*eos_finished=*/{});
    ASSERT_LT(sim_now, 1000.0) << "scheduler failed to drain";
  }
  ASSERT_GT(scheduler.stats().preemptions, 0);

  int64_t preempt_events = 0;
  int64_t resume_events = 0;
  int64_t resumed_tokens = 0;
  for (int64_t id = 0; id < 4; ++id) {
    std::vector<SeqEvent> stream;
    for (const SeqEvent& event : log.SnapshotRun(run)) {
      if (event.seq == id) {
        stream.push_back(event);
      }
    }
    ASSERT_FALSE(stream.empty()) << "seq " << id;
    EXPECT_EQ(stream.front().kind, SeqEventKind::kEnqueue);
    EXPECT_EQ(stream.back().kind, SeqEventKind::kFinish);
    EXPECT_EQ(stream.back().tokens, 6);  // All six tokens generated.
    int64_t tokens_seen = 0;
    int64_t outstanding_preempts = 0;
    bool admitted = false;
    for (const SeqEvent& event : stream) {
      switch (event.kind) {
        case SeqEventKind::kAdmit:
          admitted = true;
          break;
        case SeqEventKind::kFirstToken:
        case SeqEventKind::kDecodeStep:
          EXPECT_TRUE(admitted);
          ++tokens_seen;
          EXPECT_EQ(event.tokens, tokens_seen);  // Cumulative generated count.
          break;
        case SeqEventKind::kPreempt:
          ++outstanding_preempts;
          ++preempt_events;
          break;
        case SeqEventKind::kResume:
          EXPECT_GT(outstanding_preempts, 0);
          --outstanding_preempts;
          ++resume_events;
          resumed_tokens += event.tokens;
          break;
        default:
          break;
      }
      // Sim timestamps are monotonic within a stream (SetSimNow advances).
      EXPECT_GE(event.sim_seconds, stream.front().sim_seconds);
    }
    EXPECT_EQ(outstanding_preempts, 0) << "seq " << id;
    EXPECT_EQ(tokens_seen, 6) << "seq " << id;
  }
  EXPECT_EQ(preempt_events, scheduler.stats().preemptions);
  EXPECT_EQ(resume_events, scheduler.stats().resumes);
  EXPECT_EQ(resumed_tokens, scheduler.stats().recomputed_tokens);

  // The derived summary sees the preemptions and yields usable digests.
  const SeqLatencySummary summary =
      SummarizeSeqLatencies(DeriveSeqLatencies(log.SnapshotRun(run), /*wall=*/false));
  EXPECT_EQ(summary.sequences, 4);
  EXPECT_EQ(summary.finished, 4);
  EXPECT_EQ(summary.preemptions, scheduler.stats().preemptions);
  EXPECT_EQ(summary.recomputed_tokens, scheduler.stats().recomputed_tokens);
  EXPECT_EQ(summary.ttft.count, 4u);
  EXPECT_GT(summary.preemption_stall.count, 0u);
  EXPECT_GT(summary.preemption_stall.max, 0.0);
}

// --- Engine / timing-simulator equivalence with recording on ------------------

TEST(SeqLatencyTest, RecordingDoesNotPerturbGreedyDecode) {
  // The no-op hook contract, observed end to end: the engine's greedy
  // output must be bitwise identical with and without an event log, on a
  // KV budget tight enough to preempt.
  Rng rng(977);
  PolicyNetConfig net_config;
  net_config.vocab_size = 16;
  net_config.context_window = 3;
  net_config.embed_dim = 8;
  net_config.hidden_dim = 16;
  Rng net_rng = rng.Fork(1);
  const PolicyNet net(net_config, net_rng);
  std::vector<std::vector<int64_t>> prompts;
  for (int i = 0; i < 6; ++i) {
    prompts.emplace_back(static_cast<size_t>(2 + i % 4), 3);
  }
  RolloutLimits limits;
  limits.max_new_tokens = 6;
  RolloutOptions options;
  options.block_tokens = 2;
  options.num_blocks = 7;

  const RolloutEngine plain_engine(net, limits, options, /*kv_ranks=*/2);
  Rng plain_rng = rng.Fork(2);
  const RolloutShardResult plain =
      plain_engine.Run(prompts, /*do_sample=*/false, /*temperature=*/1.0, plain_rng);

  SeqEventLog log;
  RolloutOptions recording = options;
  recording.event_log = &log;
  const RolloutEngine recorded_engine(net, limits, recording, /*kv_ranks=*/2);
  Rng recorded_rng = rng.Fork(2);
  const RolloutShardResult recorded =
      recorded_engine.Run(prompts, /*do_sample=*/false, /*temperature=*/1.0, recorded_rng);

  EXPECT_GT(plain.stats.preemptions, 0);
  ASSERT_EQ(recorded.responses.size(), plain.responses.size());
  for (size_t i = 0; i < plain.responses.size(); ++i) {
    EXPECT_EQ(recorded.responses[i], plain.responses[i]) << "row " << i;
    ASSERT_EQ(recorded.log_probs[i].size(), plain.log_probs[i].size()) << "row " << i;
    for (size_t k = 0; k < plain.log_probs[i].size(); ++k) {
      EXPECT_EQ(recorded.log_probs[i][k], plain.log_probs[i][k]) << "row " << i;
    }
  }
  EXPECT_EQ(recorded.stats.steps, plain.stats.steps);
  EXPECT_EQ(recorded.stats.preemptions, plain.stats.preemptions);
  EXPECT_EQ(recorded.stats.resumes, plain.stats.resumes);
  EXPECT_EQ(recorded.stats.recomputed_tokens, plain.stats.recomputed_tokens);
  EXPECT_GT(log.size(), 0u);
  // Wall stamps are set on the data-plane path; sim stamps stay 0.
  for (const SeqEvent& event : log.Snapshot()) {
    EXPECT_GT(event.wall_us, 0.0);
    EXPECT_DOUBLE_EQ(event.sim_seconds, 0.0);
  }
}

TEST(SeqLatencyTest, TimingSimIsDeterministicWithAndWithoutEventSink) {
  const PerfModel perf(ModelSpec::Llama7B(), ClusterSpec::WithGpus(8));
  const GenParallelConfig gen{1, 2};
  const std::vector<DeviceId> devices{0, 1};
  const std::vector<NominalSequence> sequences(64, NominalSequence{256, 256});
  const double budget = 40.0 * 16.0 * perf.KvBytesPerTokenPerGpu(gen);
  RolloutOptions plain;
  plain.mode = RolloutMode::kContinuous;
  const RolloutSimResult reference =
      SimulateContinuousGeneration(perf, gen, devices, sequences, budget, plain);

  SeqEventLog log;
  RolloutOptions recording = plain;
  recording.sim_event_log = &log;
  const RolloutSimResult recorded =
      SimulateContinuousGeneration(perf, gen, devices, sequences, budget, recording);

  EXPECT_EQ(recorded.time.total(), reference.time.total());
  EXPECT_EQ(recorded.stats.steps, reference.stats.steps);
  EXPECT_EQ(recorded.stats.preemptions, reference.stats.preemptions);
  EXPECT_GT(log.size(), 0u);

  // The latency summary is always derived (with or without an external
  // sink) and is itself deterministic.
  EXPECT_GT(reference.stats.preemptions, 0);
  EXPECT_EQ(reference.latency.sequences, 64);
  EXPECT_EQ(reference.latency.finished, 64);
  EXPECT_EQ(reference.latency.preemptions, reference.stats.preemptions);
  EXPECT_EQ(reference.latency.ttft.count, 64u);
  EXPECT_EQ(reference.latency.tpot.count, 64u);
  EXPECT_GT(reference.latency.ttft.p50, 0.0);
  EXPECT_GT(reference.latency.preemption_stall.max, 0.0);
  EXPECT_DOUBLE_EQ(recorded.latency.ttft.p50, reference.latency.ttft.p50);
  EXPECT_DOUBLE_EQ(recorded.latency.tpot.p99, reference.latency.tpot.p99);
  EXPECT_DOUBLE_EQ(recorded.latency.preemption_stall.max,
                   reference.latency.preemption_stall.max);

  // Sim-plane events carry DES timestamps; decode-step stamps advance.
  const std::vector<SeqEvent> events = log.Snapshot();
  double max_sim = 0.0;
  for (const SeqEvent& event : events) {
    max_sim = std::max(max_sim, event.sim_seconds);
  }
  EXPECT_GT(max_sim, 0.0);
}

TEST(SeqLatencyTest, DualTraceMergesSeqEventsAsValidJson) {
  ClusterState state(ClusterSpec::WithGpus(1));
  std::vector<SeqEvent> events;
  events.push_back(MakeEvent(0, 0, SeqEventKind::kEnqueue, 0.5));
  events.push_back(MakeEvent(0, 0, SeqEventKind::kAdmit, 1.0));
  events.push_back(MakeEvent(0, 0, SeqEventKind::kFirstToken, 1.5, 1));
  events.push_back(MakeEvent(0, 0, SeqEventKind::kFinish, 2.0, 1));
  // A second run with wall-only stamps lands on its own tid/clock.
  SeqEvent wall_only = MakeEvent(1, 3, SeqEventKind::kEnqueue, 0.0);
  wall_only.wall_us = 42.0;
  events.push_back(wall_only);
  const std::string json = DualPlaneChromeJson(state, /*wall_spans=*/{}, events);
  std::string error;
  ASSERT_TRUE(JsonValidate(json, &error)) << json << ": " << error;
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(json.find("rollout sequences"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"0:0\""), std::string::npos);
  // Empty event set: pid 2 group is omitted entirely, JSON stays valid.
  const std::string without = DualPlaneChromeJson(state, /*wall_spans=*/{}, {});
  ASSERT_TRUE(JsonValidate(without, &error)) << error;
  EXPECT_EQ(without.find("\"pid\":2"), std::string::npos);
}

}  // namespace
}  // namespace hybridflow
