#include <gtest/gtest.h>

#include <numeric>

#include "src/sim/collective.h"

namespace hybridflow {
namespace {

std::vector<DeviceId> Devices(int n) {
  std::vector<DeviceId> devices(static_cast<size_t>(n));
  std::iota(devices.begin(), devices.end(), 0);
  return devices;
}

TEST(HierarchicalCollectiveTest, MatchesFlatOnOneNode) {
  ClusterSpec spec = ClusterSpec::WithGpus(8);
  std::vector<DeviceId> group = Devices(8);
  EXPECT_DOUBLE_EQ(HierarchicalAllGatherTime(spec, group, 1e9),
                   AllGatherTime(spec, group, 1e9));
}

TEST(HierarchicalCollectiveTest, BeatsFlatRingAcrossNodes) {
  // 16 GPUs over 2 nodes: a flat ring shares each NIC among 8 co-resident
  // ranks; the two-level algorithm crosses the NIC with one leader ring.
  ClusterSpec spec = ClusterSpec::WithGpus(16);
  std::vector<DeviceId> group = Devices(16);
  const double flat = AllGatherTime(spec, group, 10e9);
  const double hier = HierarchicalAllGatherTime(spec, group, 10e9);
  EXPECT_LT(hier, flat);
  EXPECT_GT(hier, 0.0);
  EXPECT_LT(HierarchicalAllReduceTime(spec, group, 10e9), AllReduceTime(spec, group, 10e9));
}

TEST(HierarchicalCollectiveTest, NeverSlowerThanFlat) {
  for (int gpus : {8, 16, 32, 64, 128}) {
    ClusterSpec spec = ClusterSpec::WithGpus(gpus);
    std::vector<DeviceId> group = Devices(gpus);
    for (double bytes : {1e6, 1e9, 100e9}) {
      EXPECT_LE(HierarchicalAllGatherTime(spec, group, bytes),
                AllGatherTime(spec, group, bytes) * (1.0 + 1e-12))
          << gpus << " GPUs, " << bytes << " bytes";
      EXPECT_LE(HierarchicalAllReduceTime(spec, group, bytes),
                AllReduceTime(spec, group, bytes) * (1.0 + 1e-12));
    }
  }
}

TEST(HierarchicalCollectiveTest, ClusterToggleRoutesThroughHierarchical) {
  ClusterSpec spec = ClusterSpec::WithGpus(32);
  std::vector<DeviceId> group = Devices(32);
  const double flat = AllGatherTime(spec, group, 10e9);
  spec.hierarchical_collectives = true;
  const double toggled = AllGatherTime(spec, group, 10e9);
  EXPECT_DOUBLE_EQ(toggled, HierarchicalAllGatherTime(spec, group, 10e9));
  EXPECT_LT(toggled, flat);
}

TEST(HierarchicalCollectiveTest, OneRankPerNodeFallsBackToFlat) {
  ClusterSpec spec = ClusterSpec::WithGpus(32);
  std::vector<DeviceId> leaders = {0, 8, 16, 24};
  EXPECT_DOUBLE_EQ(HierarchicalAllGatherTime(spec, leaders, 1e9),
                   AllGatherTime(spec, leaders, 1e9));
}

TEST(HierarchicalCollectiveTest, DegenerateInputs) {
  ClusterSpec spec = ClusterSpec::WithGpus(16);
  EXPECT_DOUBLE_EQ(HierarchicalAllGatherTime(spec, {3}, 1e9), 0.0);
  EXPECT_DOUBLE_EQ(HierarchicalAllGatherTime(spec, Devices(16), 0.0), 0.0);
  EXPECT_DOUBLE_EQ(HierarchicalAllReduceTime(spec, {3}, 1e9), 0.0);
}

}  // namespace
}  // namespace hybridflow
