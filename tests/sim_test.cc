#include <gtest/gtest.h>

#include "src/sim/collective.h"
#include "src/sim/event_queue.h"
#include "src/sim/timeline.h"
#include "src/sim/topology.h"

namespace hybridflow {
namespace {

// --- Topology ---------------------------------------------------------------

TEST(TopologyTest, WithGpusSingleNode) {
  ClusterSpec spec = ClusterSpec::WithGpus(4);
  EXPECT_EQ(spec.num_nodes, 1);
  EXPECT_EQ(spec.gpus_per_node, 4);
  EXPECT_EQ(spec.world_size(), 4);
}

TEST(TopologyTest, WithGpusMultiNode) {
  ClusterSpec spec = ClusterSpec::WithGpus(128);
  EXPECT_EQ(spec.num_nodes, 16);
  EXPECT_EQ(spec.gpus_per_node, 8);
  EXPECT_EQ(spec.NodeOf(0), 0);
  EXPECT_EQ(spec.NodeOf(7), 0);
  EXPECT_EQ(spec.NodeOf(8), 1);
  EXPECT_EQ(spec.NodeOf(127), 15);
  EXPECT_TRUE(spec.SameNode(0, 7));
  EXPECT_FALSE(spec.SameNode(7, 8));
}

TEST(TopologyTest, NodesSpannedAndMaxPerNode) {
  ClusterSpec spec = ClusterSpec::WithGpus(32);
  EXPECT_EQ(NodesSpanned(spec, {0, 1, 2}), 1);
  EXPECT_EQ(NodesSpanned(spec, {0, 8, 16}), 3);
  EXPECT_EQ(MaxDevicesPerNode(spec, {0, 1, 8}), 2);
  EXPECT_TRUE(AllOnOneNode(spec, {4, 5, 6}));
  EXPECT_FALSE(AllOnOneNode(spec, {7, 8}));
}

// --- Event queue ------------------------------------------------------------

TEST(EventQueueTest, RunsInTimestampOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.ScheduleAt(2.0, [&] { order.push_back(2); });
  queue.ScheduleAt(1.0, [&] { order.push_back(1); });
  queue.ScheduleAt(3.0, [&] { order.push_back(3); });
  queue.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueueTest, EqualTimesRunFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.ScheduleAt(1.0, [&, i] { order.push_back(i); });
  }
  queue.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, EventsMayScheduleEvents) {
  EventQueue queue;
  int fired = 0;
  queue.ScheduleAt(1.0, [&] {
    fired += 1;
    queue.ScheduleAfter(1.0, [&] { fired += 10; });
  });
  queue.RunUntilIdle();
  EXPECT_EQ(fired, 11);
  EXPECT_DOUBLE_EQ(queue.now(), 2.0);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue queue;
  int fired = 0;
  queue.ScheduleAt(1.0, [&] { fired += 1; });
  queue.ScheduleAt(5.0, [&] { fired += 1; });
  queue.RunUntil(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(queue.now(), 2.0);
  EXPECT_EQ(queue.pending(), 1u);
}

// --- Collectives ------------------------------------------------------------

TEST(CollectiveTest, SingleRankIsFree) {
  ClusterSpec spec = ClusterSpec::WithGpus(8);
  EXPECT_DOUBLE_EQ(AllGatherTime(spec, {0}, 1e9), 0.0);
  EXPECT_DOUBLE_EQ(AllReduceTime(spec, {3}, 1e9), 0.0);
  EXPECT_DOUBLE_EQ(P2pTime(spec, 2, 2, 1e9), 0.0);
}

TEST(CollectiveTest, AllReduceIsTwiceReduceScatter) {
  ClusterSpec spec = ClusterSpec::WithGpus(8);
  std::vector<DeviceId> group = {0, 1, 2, 3};
  const double bytes = 1e9;
  // Identical latency terms aside, all-reduce = reduce-scatter + all-gather.
  EXPECT_NEAR(AllReduceTime(spec, group, bytes),
              ReduceScatterTime(spec, group, bytes) + AllGatherTime(spec, group, bytes), 1e-12);
}

TEST(CollectiveTest, IntraNodeFasterThanCrossNode) {
  ClusterSpec spec = ClusterSpec::WithGpus(16);
  std::vector<DeviceId> intra = {0, 1, 2, 3};
  std::vector<DeviceId> cross = {0, 1, 8, 9};
  EXPECT_LT(AllGatherTime(spec, intra, 1e9), AllGatherTime(spec, cross, 1e9));
}

TEST(CollectiveTest, RingBandwidthSharesNicAcrossCoResidentRanks) {
  ClusterSpec spec = ClusterSpec::WithGpus(16);
  // 8 ranks per node in a cross-node ring share the 25 GB/s NIC.
  std::vector<DeviceId> all;
  for (int i = 0; i < 16; ++i) {
    all.push_back(i);
  }
  EXPECT_NEAR(RingBandwidth(spec, all), 25e9 / 8.0, 1.0);
  // 1 rank per node: the full NIC is available.
  EXPECT_NEAR(RingBandwidth(spec, {0, 8}), 25e9, 1.0);
}

TEST(CollectiveTest, AllGatherMatchesRingFormula) {
  ClusterSpec spec = ClusterSpec::WithGpus(4);
  std::vector<DeviceId> group = {0, 1, 2, 3};
  const double bytes = 4e9;
  const double expected =
      (3.0 / 4.0) * bytes / spec.nvlink_bandwidth + 3.0 * spec.link_latency;
  EXPECT_NEAR(AllGatherTime(spec, group, bytes), expected, 1e-9);
}

TEST(CollectiveTest, WireBytesPerRankFormula) {
  EXPECT_DOUBLE_EQ(AllGatherWireBytesPerRank(1, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(AllGatherWireBytesPerRank(4, 100.0), 75.0);
  EXPECT_DOUBLE_EQ(AllGatherWireBytesPerRank(2, 100.0), 50.0);
}

TEST(CollectiveTest, P2pCrossNodeUsesNic) {
  ClusterSpec spec = ClusterSpec::WithGpus(16);
  EXPECT_NEAR(P2pTime(spec, 0, 8, 25e9), 1.0 + spec.link_latency, 1e-9);
  EXPECT_LT(P2pTime(spec, 0, 1, 25e9), 0.1);
}

// --- Memory tracking --------------------------------------------------------

TEST(DeviceMemoryTest, TracksUsageAndPeak) {
  DeviceMemory memory(100.0);
  memory.Allocate("weights", 60.0);
  memory.Allocate("kv", 30.0);
  EXPECT_DOUBLE_EQ(memory.used(), 90.0);
  EXPECT_DOUBLE_EQ(memory.peak(), 90.0);
  memory.Free("kv", 30.0);
  EXPECT_DOUBLE_EQ(memory.used(), 60.0);
  EXPECT_DOUBLE_EQ(memory.peak(), 90.0);
  EXPECT_FALSE(memory.over_capacity());
}

TEST(DeviceMemoryTest, OverCapacityIsRecordedNotFatal) {
  DeviceMemory memory(100.0);
  memory.Allocate("weights", 150.0);
  EXPECT_TRUE(memory.over_capacity());
  EXPECT_TRUE(memory.ever_over_capacity());
  memory.Free("weights", 150.0);
  EXPECT_FALSE(memory.over_capacity());
  EXPECT_TRUE(memory.ever_over_capacity());
}

TEST(DeviceMemoryTest, FreeAllReturnsRemainder) {
  DeviceMemory memory(100.0);
  memory.Allocate("kv", 40.0);
  EXPECT_DOUBLE_EQ(memory.FreeAll("kv"), 40.0);
  EXPECT_DOUBLE_EQ(memory.FreeAll("kv"), 0.0);
  EXPECT_DOUBLE_EQ(memory.used(), 0.0);
}

TEST(DeviceMemoryTest, UsedByTag) {
  DeviceMemory memory(100.0);
  memory.Allocate("a", 10.0);
  memory.Allocate("a", 5.0);
  memory.Allocate("b", 1.0);
  EXPECT_DOUBLE_EQ(memory.UsedByTag("a"), 15.0);
  EXPECT_DOUBLE_EQ(memory.UsedByTag("missing"), 0.0);
}

// --- Timelines --------------------------------------------------------------

TEST(ClusterStateTest, OpsOnSameDeviceSerialize) {
  ClusterState state(ClusterSpec::WithGpus(2));
  state.ScheduleOp("a", "train", {0}, 0.0, 5.0);
  const TraceSpan& second = state.ScheduleOp("b", "train", {0}, 0.0, 3.0);
  EXPECT_DOUBLE_EQ(second.start, 5.0);
  EXPECT_DOUBLE_EQ(second.end, 8.0);
}

TEST(ClusterStateTest, OpsOnDisjointDevicesOverlap) {
  ClusterState state(ClusterSpec::WithGpus(2));
  state.ScheduleOp("a", "train", {0}, 0.0, 5.0);
  const TraceSpan& other = state.ScheduleOp("b", "train", {1}, 0.0, 3.0);
  EXPECT_DOUBLE_EQ(other.start, 0.0);
  EXPECT_DOUBLE_EQ(state.Makespan(), 5.0);
}

TEST(ClusterStateTest, ReadyTimeDelaysStart) {
  ClusterState state(ClusterSpec::WithGpus(1));
  const TraceSpan& span = state.ScheduleOp("a", "infer", {0}, 2.5, 1.0);
  EXPECT_DOUBLE_EQ(span.start, 2.5);
  EXPECT_DOUBLE_EQ(span.end, 3.5);
}

TEST(ClusterStateTest, GroupOpWaitsForAllDevices) {
  ClusterState state(ClusterSpec::WithGpus(2));
  state.ScheduleOp("busy", "train", {1}, 0.0, 4.0);
  const TraceSpan& group_op = state.ScheduleOp("group", "train", {0, 1}, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(group_op.start, 4.0);
}

TEST(ClusterStateTest, BusyTimeAccumulates) {
  ClusterState state(ClusterSpec::WithGpus(2));
  state.ScheduleOp("a", "train", {0}, 0.0, 5.0);
  state.ScheduleOp("b", "train", {0, 1}, 0.0, 2.0);
  EXPECT_DOUBLE_EQ(state.BusyTime(0), 7.0);
  EXPECT_DOUBLE_EQ(state.BusyTime(1), 2.0);
}

TEST(ClusterStateTest, ResetTimePreservesMemory) {
  ClusterState state(ClusterSpec::WithGpus(1));
  state.memory(0).Allocate("weights", 1e9);
  state.ScheduleOp("a", "train", {0}, 0.0, 5.0);
  state.ResetTime();
  EXPECT_DOUBLE_EQ(state.Makespan(), 0.0);
  EXPECT_TRUE(state.trace().empty());
  EXPECT_DOUBLE_EQ(state.memory(0).used(), 1e9);
}

TEST(ClusterStateTest, RenderTraceShowsRows) {
  ClusterState state(ClusterSpec::WithGpus(2));
  state.ScheduleOp("a", "generate", {0, 1}, 0.0, 1.0);
  state.ScheduleOp("b", "train", {0}, 0.0, 1.0);
  std::string rendered = RenderTrace(state, 40);
  EXPECT_NE(rendered.find("GPU   0"), std::string::npos);
  EXPECT_NE(rendered.find('g'), std::string::npos);
  EXPECT_NE(rendered.find('t'), std::string::npos);
}

}  // namespace
}  // namespace hybridflow
