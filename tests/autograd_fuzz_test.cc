// Autograd fuzzing: random compositions of differentiable ops are checked
// against central-difference numerical gradients. This is the safety net
// under every loss in the repo — any op with a wrong backward breaks here
// with high probability.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>

#include "src/common/rng.h"
#include "src/tensor/ops.h"
#include "src/tensor/parallel.h"

namespace hybridflow {
namespace {

// A unary op that is smooth everywhere (safe for numerical differencing).
using SmoothUnary = std::function<Tensor(const Tensor&)>;

std::vector<SmoothUnary> SmoothUnaries() {
  return {
      [](const Tensor& x) { return Tanh(x); },
      [](const Tensor& x) { return Gelu(x); },
      [](const Tensor& x) { return Exp(Scale(x, 0.3f)); },
      [](const Tensor& x) { return Square(x); },
      [](const Tensor& x) { return Sigmoid(x); },
      [](const Tensor& x) { return Softplus(x); },
      [](const Tensor& x) { return Scale(x, -1.7f); },
      [](const Tensor& x) { return AddScalar(x, 0.5f); },
  };
}

TEST(AutogradFuzzTest, RandomUnaryChainsMatchNumericalGradients) {
  Rng rng(4242);
  const std::vector<SmoothUnary> ops = SmoothUnaries();
  for (int trial = 0; trial < 40; ++trial) {
    const int depth = static_cast<int>(rng.UniformInt(1, 5));
    std::vector<size_t> chain;
    for (int d = 0; d < depth; ++d) {
      chain.push_back(static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(ops.size()) - 1)));
    }
    auto fn = [&](const Tensor& x) {
      Tensor value = x;
      for (size_t op : chain) {
        value = ops[op](value);
      }
      return Mean(value);
    };
    Tensor input = Tensor::Randn({5}, rng, 0.6f);
    Tensor output = fn(input);
    output.Backward();
    std::vector<float> analytic = input.grad();
    const float eps = 5e-3f;
    for (size_t i = 0; i < input.data().size(); ++i) {
      const float saved = input.data()[i];
      input.data()[i] = saved + eps;
      const float plus = fn(input).item();
      input.data()[i] = saved - eps;
      const float minus = fn(input).item();
      input.data()[i] = saved;
      const float numeric = (plus - minus) / (2 * eps);
      EXPECT_NEAR(analytic[i], numeric, 5e-2f)
          << "trial " << trial << " element " << i << " depth " << depth;
    }
  }
}

TEST(AutogradFuzzTest, RandomTwoInputGraphsMatchNumericalGradients) {
  Rng rng(2121);
  const std::vector<SmoothUnary> ops = SmoothUnaries();
  for (int trial = 0; trial < 30; ++trial) {
    const size_t op_a = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(ops.size()) - 1));
    const size_t op_b = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(ops.size()) - 1));
    const int combiner = static_cast<int>(rng.UniformInt(0, 2));
    auto fn = [&](const Tensor& x, const Tensor& y) {
      Tensor a = ops[op_a](x);
      Tensor b = ops[op_b](y);
      Tensor combined = combiner == 0   ? Add(a, b)
                        : combiner == 1 ? Mul(a, b)
                                        : Sub(a, b);
      return Mean(combined);
    };
    Tensor x = Tensor::Randn({4}, rng, 0.5f);
    Tensor y = Tensor::Randn({4}, rng, 0.5f);
    Tensor output = fn(x, y);
    output.Backward();
    const std::vector<float> dx = x.grad();
    const std::vector<float> dy = y.grad();
    const float eps = 5e-3f;
    for (size_t i = 0; i < 4; ++i) {
      {
        const float saved = x.data()[i];
        x.data()[i] = saved + eps;
        const float plus = fn(x, y).item();
        x.data()[i] = saved - eps;
        const float minus = fn(x, y).item();
        x.data()[i] = saved;
        EXPECT_NEAR(dx[i], (plus - minus) / (2 * eps), 5e-2f) << "x " << trial;
      }
      {
        const float saved = y.data()[i];
        y.data()[i] = saved + eps;
        const float plus = fn(x, y).item();
        y.data()[i] = saved - eps;
        const float minus = fn(x, y).item();
        y.data()[i] = saved;
        EXPECT_NEAR(dy[i], (plus - minus) / (2 * eps), 5e-2f) << "y " << trial;
      }
    }
  }
}

TEST(AutogradFuzzTest, MatrixPipelinesMatchNumericalGradients) {
  Rng rng(3333);
  for (int trial = 0; trial < 15; ++trial) {
    const int64_t m = rng.UniformInt(1, 4);
    const int64_t k = rng.UniformInt(1, 4);
    const int64_t n = rng.UniformInt(1, 4);
    Tensor w = Tensor::Randn({k, n}, rng, 0.7f, /*requires_grad=*/false);
    Tensor bias = Tensor::Randn({n}, rng, 0.3f, /*requires_grad=*/false);
    auto fn = [&](const Tensor& x) {
      Tensor h = Gelu(Add(MatMul(x, w), bias));
      return Mean(RowSum(h));
    };
    Tensor x = Tensor::Randn({m, k}, rng, 0.8f);
    Tensor out = fn(x);
    out.Backward();
    const std::vector<float> analytic = x.grad();
    const float eps = 5e-3f;
    for (size_t i = 0; i < x.data().size(); ++i) {
      const float saved = x.data()[i];
      x.data()[i] = saved + eps;
      const float plus = fn(x).item();
      x.data()[i] = saved - eps;
      const float minus = fn(x).item();
      x.data()[i] = saved;
      EXPECT_NEAR(analytic[i], (plus - minus) / (2 * eps), 6e-2f) << trial;
    }
  }
}

// Fuzzed determinism sweep: random matrix pipelines (GEMM family +
// row-wise + elementwise kernels) must produce bitwise-identical values
// and gradients at every tensor.threads setting.
TEST(AutogradKernelFuzzTest, RandomPipelinesBitwiseInvariantAcrossThreads) {
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<std::vector<float>> outputs;
    std::vector<std::vector<float>> grads_x;
    std::vector<std::vector<float>> grads_w;
    for (int threads : {1, 2, 8}) {
      SetTensorThreads(threads);
      // Re-seed per run so every thread count sees identical inputs.
      Rng rng(9000 + static_cast<uint64_t>(trial));
      const int64_t m = 32 + rng.UniformInt(0, 64);
      const int64_t k = 16 + rng.UniformInt(0, 48);
      const int64_t n = 16 + rng.UniformInt(0, 48);
      Tensor x = Tensor::Randn({m, k}, rng, 0.6f);
      Tensor w = Tensor::Randn({n, k}, rng, 0.6f);
      Tensor scores = MatMulNT(x, w);                      // [m, n]
      Tensor probs = Softmax(scores);
      Tensor h = Gelu(MatMulTN(probs, x));                 // [n, k]
      Tensor loss = Add(Sum(Square(h)), Sum(LogSoftmax(scores)));
      loss.Backward();
      outputs.push_back(loss.data());
      grads_x.push_back(x.grad());
      grads_w.push_back(w.grad());
    }
    SetTensorThreads(0);
    for (size_t run = 1; run < outputs.size(); ++run) {
      ASSERT_EQ(outputs[0].size(), outputs[run].size()) << trial;
      EXPECT_EQ(std::memcmp(outputs[0].data(), outputs[run].data(),
                            outputs[0].size() * sizeof(float)),
                0)
          << "loss diverged, trial " << trial << " run " << run;
      ASSERT_EQ(grads_x[0].size(), grads_x[run].size()) << trial;
      EXPECT_EQ(std::memcmp(grads_x[0].data(), grads_x[run].data(),
                            grads_x[0].size() * sizeof(float)),
                0)
          << "dx diverged, trial " << trial << " run " << run;
      ASSERT_EQ(grads_w[0].size(), grads_w[run].size()) << trial;
      EXPECT_EQ(std::memcmp(grads_w[0].data(), grads_w[run].data(),
                            grads_w[0].size() * sizeof(float)),
                0)
          << "dw diverged, trial " << trial << " run " << run;
    }
  }
}

TEST(AutogradFuzzTest, SigmoidSoftplusIdentities) {
  // softplus'(x) == sigmoid(x); check as values over a range.
  for (float x : {-4.0f, -1.0f, 0.0f, 0.5f, 3.0f}) {
    Tensor input = Tensor::FromData({1}, {x}, true);
    Tensor out = Softplus(input);
    out.Backward();
    const float sigmoid = 1.0f / (1.0f + std::exp(-x));
    EXPECT_NEAR(input.grad()[0], sigmoid, 1e-5f);
    // softplus(x) - softplus(-x) == x.
    Tensor neg = Softplus(Neg(Tensor::FromData({1}, {x})));
    EXPECT_NEAR(out.item() - neg.item(), x, 1e-5f);
  }
}

}  // namespace
}  // namespace hybridflow
