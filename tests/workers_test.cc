#include <gtest/gtest.h>

#include "src/workers/model_workers.h"

namespace hybridflow {
namespace {

RealComputeOptions SmallReal(uint64_t seed = 11) {
  RealComputeOptions real;
  real.enabled = true;
  real.seed = seed;
  real.task = AlignmentTask{};
  real.task.prompt_len = 4;
  real.task.response_len = 4;
  real.net.vocab_size = real.task.vocab_size;
  real.net.context_window = 3;
  real.net.embed_dim = 8;
  real.net.hidden_dim = 16;
  return real;
}

WorkerGroupOptions ActorGroupOptions(const ParallelConfig& cfg) {
  WorkerGroupOptions options;
  options.name = "actor";
  options.model = ModelSpec::Llama7B();
  options.trainable = true;
  options.train_cfg = cfg;
  return options;
}

DataBatch Prompts(int64_t rows, const AlignmentTask& task, uint64_t seed) {
  PromptDataset dataset(task, seed);
  return dataset.NextBatch(rows);
}

class ActorWorkerTest : public ::testing::Test {
 protected:
  ActorWorkerTest() : controller_(ClusterSpec::WithGpus(8)) {
    pool_ = controller_.CreatePoolRange("pool", 0, 8);
    ActorOptions actor_options;
    actor_options.gen = GenParallelConfig{1, 2};
    actor_options.engine_mode = ActorEngineMode::kHybridFlow;
    actor_ = std::make_unique<ActorWorkerGroup>(ActorGroupOptions({1, 4, 2}), pool_,
                                                &controller_, SmallReal(), actor_options);
    workload_.global_batch = 64;
    workload_.prompt_len = 256;
    workload_.response_len = 256;
  }

  Controller controller_;
  std::shared_ptr<ResourcePool> pool_;
  std::unique_ptr<ActorWorkerGroup> actor_;
  RlhfWorkloadSpec workload_;
};

TEST_F(ActorWorkerTest, GenerateSequencesProducesResponsesAndLogProbs) {
  BatchFuture prompts = BatchFuture::Immediate(Prompts(16, actor_->real().task, 1));
  BatchFuture out = actor_->GenerateSequences(prompts, workload_);
  ASSERT_EQ(out.data.batch_size(), 16);
  EXPECT_TRUE(out.data.HasTokens("responses"));
  EXPECT_TRUE(out.data.HasFloat("log_probs"));
  for (const std::vector<int64_t>& response : out.data.Tokens("responses")) {
    EXPECT_EQ(response.size(), 4u);
  }
  // Log-probs must be valid (<= 0).
  for (const std::vector<float>& row : out.data.Float("log_probs")) {
    for (float lp : row) {
      EXPECT_LE(lp, 1e-5f);
    }
  }
  EXPECT_GT(out.ready_time, 0.0);
}

TEST_F(ActorWorkerTest, GenerationSchedulesReshardAndGenerateSpans) {
  BatchFuture prompts = BatchFuture::Immediate(Prompts(8, actor_->real().task, 1));
  actor_->GenerateSequences(prompts, workload_);
  bool saw_reshard = false;
  bool saw_generate = false;
  for (const TraceSpan& span : controller_.cluster().trace()) {
    saw_reshard |= span.category == "reshard";
    saw_generate |= span.category == "generate";
  }
  EXPECT_TRUE(saw_reshard);  // tg=2 < tp=4 requires resharding.
  EXPECT_TRUE(saw_generate);
  EXPECT_GT(actor_->last_transition_seconds(), 0.0);
}

TEST_F(ActorWorkerTest, GreedyGenerationIsDeterministic) {
  BatchFuture prompts = BatchFuture::Immediate(Prompts(8, actor_->real().task, 2));
  BatchFuture a = actor_->GenerateSequences(prompts, workload_, /*do_sample=*/false);
  BatchFuture b = actor_->GenerateSequences(prompts, workload_, /*do_sample=*/false);
  EXPECT_EQ(a.data.Tokens("responses"), b.data.Tokens("responses"));
}

TEST_F(ActorWorkerTest, KvCacheBuffersAreReleasedAfterGeneration) {
  BatchFuture prompts = BatchFuture::Immediate(Prompts(8, actor_->real().task, 3));
  actor_->GenerateSequences(prompts, workload_);
  for (DeviceId device : pool_->devices()) {
    EXPECT_DOUBLE_EQ(controller_.cluster().memory(device).UsedByTag("actor_kvcache"), 0.0);
    EXPECT_DOUBLE_EQ(controller_.cluster().memory(device).UsedByTag("actor_gen_weights"),
                     0.0);
  }
}

TEST_F(ActorWorkerTest, UpdateActorImprovesObjectiveOnFixedBatch) {
  // Build an experience batch with hand-made positive advantages for
  // coherent tokens; repeated updates must raise their log-probs.
  BatchFuture prompts = BatchFuture::Immediate(Prompts(32, actor_->real().task, 4));
  BatchFuture experience = actor_->GenerateSequences(prompts, workload_);
  DataBatch batch = experience.data;
  const AlignmentTask& task = actor_->real().task;
  DataBatch::FloatColumn advantages;
  for (size_t i = 0; i < static_cast<size_t>(batch.batch_size()); ++i) {
    advantages.push_back(task.ResponseRewards(batch.Tokens("prompts")[i],
                                              batch.Tokens("responses")[i]));
  }
  batch.SetFloat("advantages", advantages);

  auto mean_coherent_logp = [&]() {
    BatchFuture probe;
    probe.data = batch;
    BatchFuture out = actor_->ComputeLogProb(probe, workload_, "probe_log_probs");
    double total = 0.0;
    int64_t count = 0;
    const auto& log_probs = out.data.Float("probe_log_probs");
    for (size_t i = 0; i < advantages.size(); ++i) {
      for (size_t k = 0; k < advantages[i].size(); ++k) {
        if (advantages[i][k] > 0.5f) {
          total += log_probs[i][k];
          count += 1;
        }
      }
    }
    return count > 0 ? total / static_cast<double>(count) : 0.0;
  };

  const double before = mean_coherent_logp();
  for (int step = 0; step < 10; ++step) {
    BatchFuture minibatch;
    minibatch.data = batch;
    actor_->UpdateActor(minibatch, workload_);
  }
  const double after = mean_coherent_logp();
  EXPECT_GT(after, before);
}

TEST_F(ActorWorkerTest, ComputeLossReturnsPretrainNll) {
  BatchFuture pretrain = BatchFuture::Immediate(Prompts(8, actor_->real().task, 9));
  BatchFuture out = actor_->ComputeLoss(pretrain, workload_);
  ASSERT_TRUE(out.data.HasFloat("pretrain_loss"));
  // NLL of a near-uniform random policy over V=16 tokens is ~log(16).
  EXPECT_GT(out.data.Float("pretrain_loss")[0][0], 1.0f);
  EXPECT_LT(out.data.Float("pretrain_loss")[0][0], 5.0f);
}

TEST_F(ActorWorkerTest, EntropyBonusKeepsPolicyFlatter) {
  // Two identical actors trained on the same sharp-advantage batch; the
  // entropy-regularized one must keep higher policy entropy.
  auto train = [&](float entropy_coef) {
    Controller controller(ClusterSpec::WithGpus(8));
    auto pool = controller.CreatePoolRange("pool", 0, 8);
    ActorOptions actor_options;
    actor_options.gen = GenParallelConfig{1, 2};
    RealComputeOptions real = SmallReal(33);
    real.adam.lr = 0.02f;
    ActorWorkerGroup actor(ActorGroupOptions({1, 4, 2}), pool, &controller, real,
                           actor_options);
    // Hand-built experience rewarding token 3 everywhere: REINFORCE drives
    // the policy to collapse onto it unless the entropy bonus resists.
    DataBatch batch;
    DataBatch::TokenColumn prompts_col(16, {1, 2, 3, 4});
    DataBatch::TokenColumn responses(16, {3, 3, 3, 3});
    DataBatch::FloatColumn old_lp(16, std::vector<float>(4, -2.77f));
    DataBatch::FloatColumn advantages(16, std::vector<float>(4, 3.0f));
    batch.SetTokens("prompts", prompts_col);
    batch.SetTokens("responses", responses);
    batch.SetFloat("log_probs", old_lp);
    batch.SetFloat("advantages", advantages);
    ActorUpdateConfig config;
    config.loss.kind = PolicyLossKind::kReinforce;
    config.entropy_coef = entropy_coef;
    for (int step = 0; step < 40; ++step) {
      BatchFuture minibatch;
      minibatch.data = batch;
      actor.UpdateActor(minibatch, workload_, config);
    }
    // Measure mean entropy of the resulting policy on fresh contexts.
    std::vector<std::vector<int64_t>> contexts;
    for (int64_t last = 0; last < actor.real().net.vocab_size; ++last) {
      contexts.push_back({0, 1, last});
    }
    return MeanEntropy(actor.net().Forward(contexts)).item();
  };
  const double without = train(0.0f);
  const double with_bonus = train(1.0f);
  EXPECT_GT(with_bonus, without + 0.05);
}

TEST_F(ActorWorkerTest, MemoryRegisteredOnConstruction) {
  // 7B trainable, mp = 4: 18 * N / 4 per GPU.
  const double expected = 18.0 * ModelSpec::Llama7B().NumParams() / 4.0;
  EXPECT_NEAR(controller_.cluster().memory(0).UsedByTag("actor"), expected, 1e6);
}

TEST(WorkerGroupTest, ColocatedGroupsTimeShare) {
  Controller controller(ClusterSpec::WithGpus(4));
  auto pool = controller.CreatePoolRange("shared", 0, 4);
  RealComputeOptions real = SmallReal();
  real.enabled = false;

  WorkerGroupOptions reward_options;
  reward_options.name = "reward";
  reward_options.model = ModelSpec::Llama7B();
  reward_options.scalar_head = true;
  reward_options.train_cfg = {1, 1, 4};
  RewardWorkerGroup reward(reward_options, pool, &controller, real,
                           RewardSource::kRuleReward);

  WorkerGroupOptions ref_options;
  ref_options.name = "reference";
  ref_options.model = ModelSpec::Llama7B();
  ref_options.train_cfg = {1, 1, 4};
  ReferenceWorkerGroup reference(ref_options, pool, &controller, real, nullptr);

  RlhfWorkloadSpec workload;
  workload.global_batch = 64;
  BatchFuture input;
  BatchFuture r1 = reward.ComputeReward(input, workload);
  BatchFuture r2 = reference.ComputeRefLogProb(input, workload);
  // Same pool: the second op starts only after the first finishes.
  EXPECT_GE(r2.ready_time, r1.ready_time);
  const auto& trace = controller.cluster().trace();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_GE(trace[1].start, trace[0].end);
}

TEST(WorkerGroupTest, DisjointPoolsOverlapInTime) {
  Controller controller(ClusterSpec::WithGpus(8));
  auto pool_a = controller.CreatePoolRange("a", 0, 4);
  auto pool_b = controller.CreatePoolRange("b", 4, 4);
  RealComputeOptions real = SmallReal();
  real.enabled = false;

  WorkerGroupOptions options;
  options.name = "reward";
  options.model = ModelSpec::Llama7B();
  options.scalar_head = true;
  options.train_cfg = {1, 1, 4};
  RewardWorkerGroup reward(options, pool_a, &controller, real, RewardSource::kRuleReward);
  options.name = "cost";
  RewardWorkerGroup cost(options, pool_b, &controller, real, RewardSource::kRuleCost,
                         "costs");

  RlhfWorkloadSpec workload;
  workload.global_batch = 64;
  BatchFuture input;
  reward.ComputeReward(input, workload);
  cost.ComputeReward(input, workload);
  const auto& trace = controller.cluster().trace();
  ASSERT_EQ(trace.size(), 2u);
  // No data dependency and disjoint devices: both start at t=0.
  EXPECT_DOUBLE_EQ(trace[0].start, 0.0);
  EXPECT_DOUBLE_EQ(trace[1].start, 0.0);
}

TEST(CriticWorkerTest, ValuesHavePerTokenShape) {
  Controller controller(ClusterSpec::WithGpus(4));
  auto pool = controller.CreatePoolRange("critic", 0, 4);
  WorkerGroupOptions options;
  options.name = "critic";
  options.model = ModelSpec::Llama7B();
  options.scalar_head = true;
  options.trainable = true;
  options.train_cfg = {1, 2, 2};
  CriticWorkerGroup critic(options, pool, &controller, SmallReal(), "values");

  DataBatch batch;
  batch.SetTokens("prompts", {{1, 2, 3, 4}, {5, 6, 0, 1}});
  batch.SetTokens("responses", {{2, 3, 4, 5}, {6, 7, 1, 2}});
  RlhfWorkloadSpec workload;
  workload.global_batch = 64;
  BatchFuture input;
  input.data = batch;
  BatchFuture out = critic.ComputeValues(input, workload);
  ASSERT_TRUE(out.data.HasFloat("values"));
  EXPECT_EQ(out.data.Float("values").size(), 2u);
  EXPECT_EQ(out.data.Float("values")[0].size(), 4u);
}

TEST(CriticWorkerTest, UpdateCriticFitsReturns) {
  Controller controller(ClusterSpec::WithGpus(2));
  auto pool = controller.CreatePoolRange("critic", 0, 2);
  WorkerGroupOptions options;
  options.name = "critic";
  options.model = ModelSpec::Llama7B();
  options.scalar_head = true;
  options.trainable = true;
  options.train_cfg = {1, 1, 2};
  RealComputeOptions real = SmallReal();
  real.adam.lr = 0.05f;
  CriticWorkerGroup critic(options, pool, &controller, real, "values");

  DataBatch batch;
  batch.SetTokens("prompts", {{1, 2, 3, 4}, {5, 6, 0, 1}});
  batch.SetTokens("responses", {{2, 3, 4, 5}, {6, 7, 1, 2}});
  batch.SetFloat("returns", {{1, 1, 1, 1}, {1, 1, 1, 1}});
  RlhfWorkloadSpec workload;
  workload.global_batch = 64;

  double first_loss = 0.0;
  double last_loss = 0.0;
  for (int step = 0; step < 60; ++step) {
    // Old values refresh each step (on-policy fitting).
    BatchFuture probe;
    probe.data = batch;
    batch = critic.ComputeValues(probe, workload).data;
    BatchFuture minibatch;
    minibatch.data = batch;
    BatchFuture out = critic.UpdateCritic(minibatch, workload);
    const double loss = out.data.Float("critic_loss")[0][0];
    if (step == 0) {
      first_loss = loss;
    }
    last_loss = loss;
  }
  EXPECT_LT(last_loss, first_loss);
}

TEST(RewardWorkerTest, RuleRewardMatchesTask) {
  Controller controller(ClusterSpec::WithGpus(2));
  auto pool = controller.CreatePoolRange("reward", 0, 2);
  WorkerGroupOptions options;
  options.name = "reward";
  options.model = ModelSpec::Llama7B();
  options.scalar_head = true;
  options.train_cfg = {1, 1, 2};
  RealComputeOptions real = SmallReal();
  RewardWorkerGroup reward(options, pool, &controller, real, RewardSource::kRuleReward);

  DataBatch batch;
  batch.SetTokens("prompts", {{1, 2, 3, 2}});
  batch.SetTokens("responses", {{3, 4, 5, 6}});
  RlhfWorkloadSpec workload;
  workload.global_batch = 64;
  BatchFuture input;
  input.data = batch;
  BatchFuture out = reward.ComputeReward(input, workload);
  EXPECT_NEAR(out.data.Float("rewards")[0][0],
              real.task.SampleReward({1, 2, 3, 2}, {3, 4, 5, 6}), 1e-6);
}

TEST(RewardWorkerTest, CostOutputsToCostsColumn) {
  Controller controller(ClusterSpec::WithGpus(2));
  auto pool = controller.CreatePoolRange("cost", 0, 2);
  WorkerGroupOptions options;
  options.name = "cost";
  options.model = ModelSpec::Llama7B();
  options.scalar_head = true;
  options.train_cfg = {1, 1, 2};
  RealComputeOptions real = SmallReal();
  RewardWorkerGroup cost(options, pool, &controller, real, RewardSource::kRuleCost, "costs");

  DataBatch batch;
  batch.SetTokens("prompts", {{1, 2, 3, 2}});
  batch.SetTokens("responses", {{15, 15, 1, 2}});  // Two toxic tokens of 4.
  RlhfWorkloadSpec workload;
  BatchFuture input;
  input.data = batch;
  BatchFuture out = cost.ComputeReward(input, workload);
  EXPECT_NEAR(out.data.Float("costs")[0][0], 0.5f, 1e-6);
}

TEST(ReferenceWorkerTest, InitializedFromActorGivesSameLogProbs) {
  Controller controller(ClusterSpec::WithGpus(4));
  auto pool = controller.CreatePoolRange("pool", 0, 4);
  RealComputeOptions real = SmallReal();
  ActorOptions actor_options;
  actor_options.gen = GenParallelConfig{1, 1};
  ActorWorkerGroup actor(ActorGroupOptions({1, 2, 2}), pool, &controller, real,
                         actor_options);

  WorkerGroupOptions ref_options;
  ref_options.name = "reference";
  ref_options.model = ModelSpec::Llama7B();
  ref_options.train_cfg = {1, 2, 2};
  ReferenceWorkerGroup reference(ref_options, pool, &controller, real, &actor.net());

  RlhfWorkloadSpec workload;
  workload.global_batch = 64;
  BatchFuture prompts = BatchFuture::Immediate(Prompts(8, real.task, 5));
  BatchFuture generated = actor.GenerateSequences(prompts, workload);
  BatchFuture with_actor_lp = actor.ComputeLogProb(generated, workload, "actor_lp");
  BatchFuture with_ref = reference.ComputeRefLogProb(with_actor_lp, workload);
  const auto& actor_lp = with_ref.data.Float("actor_lp");
  const auto& ref_lp = with_ref.data.Float("ref_log_probs");
  for (size_t i = 0; i < actor_lp.size(); ++i) {
    for (size_t k = 0; k < actor_lp[i].size(); ++k) {
      EXPECT_NEAR(actor_lp[i][k], ref_lp[i][k], 1e-5);
    }
  }
}

}  // namespace
}  // namespace hybridflow
