#include <gtest/gtest.h>

#include "src/baselines/system_builder.h"
#include "src/rlhf/kl_controller.h"

namespace hybridflow {
namespace {

TEST(AdaptiveKlTest, RaisesCoefWhenKlAboveTarget) {
  AdaptiveKlConfig config;
  config.target_kl = 0.05;
  config.initial_coef = 0.1;
  AdaptiveKlController controller(config);
  const double before = controller.coef();
  controller.Update(0.5);  // 10x the target.
  EXPECT_GT(controller.coef(), before);
}

TEST(AdaptiveKlTest, LowersCoefWhenKlBelowTarget) {
  AdaptiveKlConfig config;
  config.target_kl = 0.05;
  config.initial_coef = 0.1;
  AdaptiveKlController controller(config);
  const double before = controller.coef();
  controller.Update(0.001);
  EXPECT_LT(controller.coef(), before);
}

TEST(AdaptiveKlTest, ExactTargetIsAFixedPoint) {
  AdaptiveKlConfig config;
  config.target_kl = 0.05;
  config.initial_coef = 0.2;
  AdaptiveKlController controller(config);
  controller.Update(0.05);
  EXPECT_DOUBLE_EQ(controller.coef(), 0.2);
}

TEST(AdaptiveKlTest, ErrorClipBoundsSingleUpdate) {
  AdaptiveKlConfig config;
  config.target_kl = 0.05;
  config.initial_coef = 1.0;
  config.horizon_gain = 0.1;
  config.error_clip = 1.0;
  AdaptiveKlController controller(config);
  controller.Update(1000.0);  // Huge KL: update still bounded to +10%.
  EXPECT_NEAR(controller.coef(), 1.1, 1e-12);
}

TEST(AdaptiveKlTest, CoefStaysWithinBounds) {
  AdaptiveKlConfig config;
  config.target_kl = 0.05;
  config.initial_coef = 0.1;
  config.min_coef = 0.01;
  config.max_coef = 0.5;
  AdaptiveKlController controller(config);
  for (int i = 0; i < 200; ++i) {
    controller.Update(10.0);
  }
  EXPECT_DOUBLE_EQ(controller.coef(), 0.5);
  for (int i = 0; i < 500; ++i) {
    controller.Update(0.0);
  }
  EXPECT_DOUBLE_EQ(controller.coef(), 0.01);
}

TEST(AdaptiveKlTest, IntegratesWithPpoProgram) {
  SystemBuildConfig config;
  config.system = RlhfSystem::kHybridFlow;
  config.algorithm = RlhfAlgorithm::kPpo;
  config.num_gpus = 8;
  config.real_compute = true;
  config.real_batch = 32;
  config.seed = 51;
  config.workload.global_batch = 64;
  RlhfSystemInstance system = BuildSystem(config);
  ASSERT_TRUE(system.feasible);
  // Rebuild the program with adaptive KL enabled.
  RlhfProgramConfig program_config;
  program_config.algorithm = RlhfAlgorithm::kPpo;
  program_config.workload = config.workload;
  program_config.real_batch = 32;
  program_config.use_adaptive_kl = true;
  program_config.adaptive_kl.target_kl = 0.02;
  RlhfModels models;
  models.actor = system.actor.get();
  models.critic = system.critic.get();
  models.reference = system.reference.get();
  models.reward = system.reward.get();
  RlhfProgram program(program_config, models, system.controller.get(),
                      system.dataset.get());
  std::vector<double> coefs;
  for (int i = 0; i < 8; ++i) {
    IterationMetrics metrics = program.RunIteration();
    coefs.push_back(metrics.kl_coef);
    EXPECT_GT(metrics.kl_coef, 0.0);
  }
  // The coefficient must actually move (policy drifts from the reference
  // as updates accumulate).
  bool moved = false;
  for (size_t i = 1; i < coefs.size(); ++i) {
    moved = moved || coefs[i] != coefs[0];
  }
  EXPECT_TRUE(moved);
}

}  // namespace
}  // namespace hybridflow
