// Tests for the DDSketch-style mergeable percentile histogram
// (src/obs/quantile.h) and the fixed-bucket Histogram's interpolated
// SnapshotQuantile. Suite names contain "Quantile" so tools/check.sh picks
// them up for the TSan and schedule-fuzz phases.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/obs/json_util.h"
#include "src/obs/metrics.h"
#include "src/obs/quantile.h"

namespace hybridflow {
namespace {

// Exact nearest-rank percentile of a sample, the reference the sketch's
// estimate is compared against.
double ExactQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  rank = std::min(n, std::max<size_t>(1, rank));
  return values[rank - 1];
}

TEST(QuantileHistogramTest, EmptyHistogramIsZero) {
  QuantileHistogram histogram;
  EXPECT_EQ(histogram.TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 0.0);
  const QuantileSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 0.0);
}

TEST(QuantileHistogramTest, RelativeErrorIsBoundedOnRandomSamples) {
  // The acceptance bound for this repo's quantile sketch: every estimate
  // within 5% relative error of the exact nearest-rank percentile. The
  // default sketch (e=1%) must clear it with margin; a coarse e=5% sketch
  // must still clear 2x its own configured bound (nearest-rank ties can
  // push slightly past e itself, never past 2e in practice).
  constexpr double kAcceptanceBound = 0.05;
  for (const double relative_error : {QuantileHistogram::kDefaultRelativeError, 0.05}) {
    QuantileHistogram histogram(relative_error);
    Rng rng(1234);
    std::vector<double> values;
    for (int i = 0; i < 20000; ++i) {
      // Heavy-tailed sample spanning ~7 decades — the regime fixed-bucket
      // histograms get wrong and the log-bucketed sketch must not.
      const double value = std::exp(rng.Uniform(std::log(1e-3), std::log(1e4)));
      values.push_back(value);
      histogram.Observe(value);
    }
    const QuantileSnapshot snapshot = histogram.Snapshot();
    for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
      const double exact = ExactQuantile(values, q);
      const double estimate = snapshot.Quantile(q);
      const double bound =
          std::max(kAcceptanceBound, 2.0 * relative_error);
      EXPECT_LE(std::abs(estimate - exact), bound * exact)
          << "e=" << relative_error << " q=" << q << " exact=" << exact
          << " estimate=" << estimate;
    }
  }
}

TEST(QuantileHistogramTest, ExtremeQuantilesAreExactObservedValues) {
  QuantileHistogram histogram;
  for (const double value : {7.25, 1.5, 42.0, 3.0}) {
    histogram.Observe(value);
  }
  // The sketch keeps exact min/max and clamps every estimate into them.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.0), 1.5);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 42.0);
  const QuantileSnapshot snapshot = histogram.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.min, 1.5);
  EXPECT_DOUBLE_EQ(snapshot.max, 42.0);
  EXPECT_DOUBLE_EQ(snapshot.sum, 7.25 + 1.5 + 42.0 + 3.0);
}

TEST(QuantileHistogramTest, ZeroAndNegativeValuesLandInExactZeroBucket) {
  QuantileHistogram histogram;
  histogram.Observe(-1.0);
  histogram.Observe(0.0);
  histogram.Observe(5.0);
  const QuantileSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 3u);
  EXPECT_EQ(snapshot.zero_count, 2u);
  // rank ceil(0.5*3)=2 falls inside the zero bucket -> estimate 0.
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.5), 0.0);
  // rank 3 is the positive observation, within 1% of 5.
  EXPECT_NEAR(snapshot.Quantile(0.99), 5.0, 0.05);
  EXPECT_DOUBLE_EQ(snapshot.min, -1.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 5.0);
}

TEST(QuantileHistogramTest, NonFiniteObservationsAreIgnored) {
  QuantileHistogram histogram;
  histogram.Observe(std::nan(""));
  histogram.Observe(std::numeric_limits<double>::infinity());
  EXPECT_EQ(histogram.TotalCount(), 0u);
  histogram.Observe(2.0);
  EXPECT_EQ(histogram.TotalCount(), 1u);
}

TEST(QuantileHistogramTest, MergeMatchesTheCombinedStream) {
  // Per-rank engine instances merge their snapshots into one distribution;
  // the merged sketch must answer exactly like a single sketch that saw
  // every value.
  QuantileHistogram shard_a;
  QuantileHistogram shard_b;
  QuantileHistogram combined;
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    const double value = std::exp(rng.Uniform(std::log(0.5), std::log(500.0)));
    (i % 2 == 0 ? shard_a : shard_b).Observe(value);
    combined.Observe(value);
  }
  QuantileSnapshot merged = shard_a.Snapshot();
  merged.Merge(shard_b.Snapshot());
  const QuantileSnapshot reference = combined.Snapshot();
  EXPECT_EQ(merged.count, reference.count);
  // Summation order differs between the sharded and combined streams, so
  // the sums agree only up to float round-off.
  EXPECT_NEAR(merged.sum, reference.sum, 1e-9 * reference.sum);
  EXPECT_DOUBLE_EQ(merged.min, reference.min);
  EXPECT_DOUBLE_EQ(merged.max, reference.max);
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(merged.Quantile(q), reference.Quantile(q)) << "q=" << q;
  }
}

TEST(QuantileHistogramTest, MergeWithEmptySnapshotsIsIdentity) {
  QuantileHistogram histogram;
  histogram.Observe(3.0);
  QuantileSnapshot snapshot = histogram.Snapshot();
  snapshot.Merge(QuantileHistogram().Snapshot());  // other empty
  EXPECT_EQ(snapshot.count, 1u);
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.5), 3.0);
  QuantileSnapshot empty = QuantileHistogram().Snapshot();
  empty.Merge(snapshot);  // this empty
  EXPECT_EQ(empty.count, 1u);
  EXPECT_DOUBLE_EQ(empty.Quantile(1.0), 3.0);
}

TEST(QuantileHistogramDeathTest, MergeRejectsMismatchedGeometry) {
  // Both snapshots non-empty (empty operands short-circuit before the
  // geometry check), different relative errors -> different gamma.
  QuantileHistogram fine_histogram(0.01);
  fine_histogram.Observe(2.0);
  QuantileSnapshot fine = fine_histogram.Snapshot();
  QuantileHistogram coarse(0.05);
  coarse.Observe(1.0);
  EXPECT_DEATH(fine.Merge(coarse.Snapshot()), "identical bucket geometry");
}

TEST(QuantileHistogramTest, ConcurrentObserveIsExact) {
  // TSan-relevant: the lock-free Observe path hammered from many threads
  // must lose no observations and keep exact count/sum/extrema.
  QuantileHistogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads, [&histogram](int thread) {
    for (int i = 0; i < kPerThread; ++i) {
      histogram.Observe(static_cast<double>(1 + (thread * kPerThread + i) % 1000));
    }
  });
  const QuantileSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, static_cast<uint64_t>(kThreads * kPerThread));
  uint64_t bucket_total = snapshot.zero_count;
  for (const uint64_t bucket : snapshot.buckets) {
    bucket_total += bucket;
  }
  EXPECT_EQ(bucket_total, snapshot.count);
  EXPECT_DOUBLE_EQ(snapshot.min, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 1000.0);
  // Every thread writes the same value multiset, so the exact sum is known.
  double expected_sum = 0.0;
  for (int i = 0; i < kPerThread; ++i) {
    expected_sum += static_cast<double>(1 + i % 1000);
  }
  EXPECT_DOUBLE_EQ(snapshot.sum, expected_sum * kThreads);
  EXPECT_NEAR(snapshot.Quantile(0.5), 500.0, 500.0 * 0.05);
}

// ---------------------------------------------------------------------------
// Registry integration and export
// ---------------------------------------------------------------------------

TEST(QuantileRegistryTest, SameNameAndLabelsReturnTheSameInstrument) {
  MetricsRegistry registry;
  QuantileHistogram& a = registry.GetQuantileHistogram("q.latency_us");
  QuantileHistogram& b = registry.GetQuantileHistogram(
      "q.latency_us", QuantileHistogram::kDefaultRelativeError);
  EXPECT_EQ(&a, &b);
  QuantileHistogram& labeled =
      registry.GetQuantileHistogram("q.latency_us", 0.01, {{"plane", "data"}});
  EXPECT_NE(&a, &labeled);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(QuantileRegistryTest, JsonLinesExportIsValidAndCarriesPercentiles) {
  MetricsRegistry registry;
  QuantileHistogram& q = registry.GetQuantileHistogram("q.ttft_us", 0.01, {{"plane", "data"}});
  for (int i = 1; i <= 100; ++i) {
    q.Observe(static_cast<double>(i));
  }
  const std::string jsonl = registry.ToJsonLines();
  std::istringstream lines(jsonl);
  int line_count = 0;
  for (std::string line; std::getline(lines, line); ++line_count) {
    std::string error;
    EXPECT_TRUE(JsonValidate(line, &error)) << line << ": " << error;
  }
  EXPECT_EQ(line_count, 1);
  EXPECT_NE(jsonl.find("\"type\":\"quantile\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"relative_error\":0.01"), std::string::npos);
  EXPECT_NE(jsonl.find("\"count\":100"), std::string::npos);
  EXPECT_NE(jsonl.find("\"p50\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"p99\":"), std::string::npos);
  EXPECT_NE(registry.ToText().find("(quantile e=0.01)"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fixed-bucket Histogram::SnapshotQuantile (bucket interpolation)
// ---------------------------------------------------------------------------

TEST(HistogramSnapshotQuantileTest, InterpolatesWithinBuckets) {
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("h.us", {10.0, 20.0});
  // 10 values in (0, 10], 10 in (10, 20] -> the distribution is assumed
  // uniform inside each bucket, so p50 = upper edge of the first bucket
  // and p75 = midpoint of the second.
  for (int i = 0; i < 10; ++i) {
    histogram.Observe(5.0);
    histogram.Observe(15.0);
  }
  EXPECT_DOUBLE_EQ(histogram.SnapshotQuantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(histogram.SnapshotQuantile(0.75), 15.0);
  EXPECT_DOUBLE_EQ(histogram.SnapshotQuantile(1.0), 20.0);
  // Ranks inside the first bucket interpolate from its lower edge 0.
  EXPECT_DOUBLE_EQ(histogram.SnapshotQuantile(0.05), 1.0);
}

TEST(HistogramSnapshotQuantileTest, OverflowRanksClampToLastFiniteBound) {
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("h.us", {10.0});
  histogram.Observe(5.0);
  histogram.Observe(1e6);  // overflow bucket
  // The overflow bucket has no finite upper edge; percentile queries that
  // land there report the last finite bound rather than inventing a value.
  EXPECT_DOUBLE_EQ(histogram.SnapshotQuantile(0.99), 10.0);
}

TEST(HistogramSnapshotQuantileTest, EmptyHistogramReturnsZero) {
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("h.us", {10.0});
  EXPECT_DOUBLE_EQ(histogram.SnapshotQuantile(0.5), 0.0);
}

}  // namespace
}  // namespace hybridflow
