#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <string>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/tensor/ops.h"
#include "src/tensor/parallel.h"
#include "src/tensor/simd.h"
#include "src/tensor/tensor.h"

namespace hybridflow {
namespace {

// Numerical gradient check: perturbs each input element and compares the
// central difference against the autograd gradient of a scalar output.
void CheckGradient(const std::function<Tensor(const Tensor&)>& fn, Tensor input,
                   float tolerance = 2e-2f) {
  Tensor output = fn(input);
  output.Backward();
  const std::vector<float> analytic = input.grad();
  const float epsilon = 1e-2f;
  for (size_t i = 0; i < input.data().size(); ++i) {
    const float saved = input.data()[i];
    input.data()[i] = saved + epsilon;
    const float plus = fn(input).item();
    input.data()[i] = saved - epsilon;
    const float minus = fn(input).item();
    input.data()[i] = saved;
    const float numeric = (plus - minus) / (2.0f * epsilon);
    EXPECT_NEAR(analytic[i], numeric, tolerance) << "element " << i;
  }
}

TEST(TensorTest, FactoriesAndAccessors) {
  Tensor zeros = Tensor::Zeros({2, 3});
  EXPECT_EQ(zeros.size(), 6);
  EXPECT_EQ(zeros.ndim(), 2);
  EXPECT_FLOAT_EQ(zeros.at(1, 2), 0.0f);

  Tensor data = Tensor::FromData({3}, {1.0f, 2.0f, 3.0f});
  EXPECT_FLOAT_EQ(data.at(1), 2.0f);

  Tensor scalar = Tensor::Scalar(5.0f);
  EXPECT_FLOAT_EQ(scalar.item(), 5.0f);
}

TEST(TensorTest, RandnUsesGivenStddev) {
  Rng rng(3);
  Tensor t = Tensor::Randn({1000}, rng, 0.5f);
  double sum = 0.0;
  double sq = 0.0;
  for (float x : t.data()) {
    sum += x;
    sq += x * x;
  }
  const double mean = sum / 1000.0;
  const double stddev = std::sqrt(sq / 1000.0 - mean * mean);
  EXPECT_NEAR(mean, 0.0, 0.06);
  EXPECT_NEAR(stddev, 0.5, 0.06);
}

TEST(MatMulTest, ForwardValues) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(MatMulTest, GradientCheck) {
  Rng rng(1);
  Tensor b = Tensor::FromData({3, 2}, {0.1f, -0.2f, 0.3f, 0.4f, -0.5f, 0.6f});
  CheckGradient([&](const Tensor& a) { return Sum(MatMul(a, b)); },
                Tensor::Randn({2, 3}, rng, 1.0f));
  Tensor a = Tensor::FromData({2, 3}, {0.5f, -1.0f, 0.25f, 2.0f, 0.0f, -0.75f});
  CheckGradient([&](const Tensor& w) { return Sum(MatMul(a, w)); },
                Tensor::Randn({3, 2}, rng, 1.0f));
}

TEST(AddTest, BiasBroadcastForwardAndGrad) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor bias = Tensor::FromData({2}, {10, 20}, /*requires_grad=*/true);
  Tensor out = Add(a, bias);
  EXPECT_FLOAT_EQ(out.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 24.0f);
  Sum(out).Backward();
  EXPECT_FLOAT_EQ(bias.grad()[0], 2.0f);  // Broadcast over 2 rows.
  EXPECT_FLOAT_EQ(bias.grad()[1], 2.0f);
}

TEST(ElementwiseTest, GradientChecks) {
  Rng rng(2);
  Tensor other = Tensor::Randn({6}, rng, 1.0f, /*requires_grad=*/false);
  CheckGradient([&](const Tensor& x) { return Sum(Mul(x, other)); },
                Tensor::Randn({6}, rng, 1.0f));
  CheckGradient([&](const Tensor& x) { return Sum(Sub(x, other)); },
                Tensor::Randn({6}, rng, 1.0f));
  CheckGradient([&](const Tensor& x) { return Sum(Square(x)); },
                Tensor::Randn({6}, rng, 1.0f));
  CheckGradient([&](const Tensor& x) { return Sum(Exp(x)); }, Tensor::Randn({6}, rng, 0.5f));
  CheckGradient([&](const Tensor& x) { return Sum(Tanh(x)); }, Tensor::Randn({6}, rng, 1.0f));
  CheckGradient([&](const Tensor& x) { return Sum(Gelu(x)); }, Tensor::Randn({6}, rng, 1.0f));
  CheckGradient([&](const Tensor& x) { return Mean(Scale(x, 3.0f)); },
                Tensor::Randn({6}, rng, 1.0f));
}

TEST(ElementwiseTest, MinimumMaximumPickCorrectBranch) {
  Tensor a = Tensor::FromData({2}, {1.0f, 5.0f}, true);
  Tensor b = Tensor::FromData({2}, {3.0f, 2.0f}, false);
  Tensor lo = Minimum(a, b);
  EXPECT_FLOAT_EQ(lo.at(0), 1.0f);
  EXPECT_FLOAT_EQ(lo.at(1), 2.0f);
  Sum(lo).Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 1.0f);  // a chosen.
  EXPECT_FLOAT_EQ(a.grad()[1], 0.0f);  // b chosen.
}

TEST(ClampTest, GradientIsMaskInsideRange) {
  Tensor x = Tensor::FromData({3}, {-2.0f, 0.5f, 2.0f}, true);
  Tensor clamped = Clamp(x, -1.0f, 1.0f);
  EXPECT_FLOAT_EQ(clamped.at(0), -1.0f);
  EXPECT_FLOAT_EQ(clamped.at(1), 0.5f);
  EXPECT_FLOAT_EQ(clamped.at(2), 1.0f);
  Sum(clamped).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 1.0f);
  EXPECT_FLOAT_EQ(x.grad()[2], 0.0f);
}

TEST(LogSoftmaxTest, RowsSumToOneAfterExp) {
  Rng rng(4);
  Tensor logits = Tensor::Randn({3, 5}, rng, 2.0f);
  Tensor log_probs = LogSoftmax(logits);
  for (int64_t i = 0; i < 3; ++i) {
    double sum = 0.0;
    for (int64_t j = 0; j < 5; ++j) {
      sum += std::exp(log_probs.at(i, j));
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(LogSoftmaxTest, GradientCheck) {
  Rng rng(5);
  CheckGradient([&](const Tensor& x) { return Sum(Mul(LogSoftmax(x),
                                                      Tensor::FromData({2, 3}, {1, 0, 2, -1, 1, 0}))); },
                Tensor::Randn({2, 3}, rng, 1.0f));
}

TEST(LogSoftmaxTest, NumericallyStableForLargeLogits) {
  Tensor logits = Tensor::FromData({1, 3}, {1000.0f, 1000.0f, 1000.0f});
  Tensor log_probs = LogSoftmax(logits);
  EXPECT_NEAR(log_probs.at(0, 0), std::log(1.0 / 3.0), 1e-4);
}

TEST(GatherRowsTest, SelectsAndScattersGrad) {
  Tensor table = Tensor::FromData({3, 2}, {1, 2, 3, 4, 5, 6}, true);
  Tensor rows = GatherRows(table, {2, 0, 2});
  EXPECT_FLOAT_EQ(rows.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(rows.at(1, 1), 2.0f);
  Sum(rows).Backward();
  EXPECT_FLOAT_EQ(table.grad()[0], 1.0f);  // Row 0 selected once.
  EXPECT_FLOAT_EQ(table.grad()[2], 0.0f);  // Row 1 never selected.
  EXPECT_FLOAT_EQ(table.grad()[4], 2.0f);  // Row 2 selected twice.
}

TEST(PickPerRowTest, PicksAndScattersGrad) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6}, true);
  Tensor picked = PickPerRow(a, {2, 0});
  EXPECT_FLOAT_EQ(picked.at(0), 3.0f);
  EXPECT_FLOAT_EQ(picked.at(1), 4.0f);
  Sum(picked).Backward();
  EXPECT_FLOAT_EQ(a.grad()[2], 1.0f);
  EXPECT_FLOAT_EQ(a.grad()[3], 1.0f);
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0f);
}

TEST(ReshapeTest, PreservesDataPassesGrad) {
  Tensor a = Tensor::FromData({2, 2}, {1, 2, 3, 4}, true);
  Tensor flat = Reshape(a, {4});
  EXPECT_FLOAT_EQ(flat.at(3), 4.0f);
  Sum(flat).Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 1.0f);
}

TEST(DetachTest, BlocksGradient) {
  Tensor a = Tensor::FromData({2}, {1.0f, 2.0f}, true);
  Tensor detached = Detach(a);
  EXPECT_FALSE(detached.requires_grad());
  Tensor loss = Sum(Mul(detached, detached));
  EXPECT_FALSE(loss.requires_grad());
}

TEST(ConcatRowsTest, StacksAndRoutesGrads) {
  Tensor a = Tensor::FromData({1, 2}, {1, 2}, true);
  Tensor b = Tensor::FromData({2, 2}, {3, 4, 5, 6}, true);
  Tensor c = ConcatRows({a, b});
  EXPECT_EQ(c.dim(0), 3);
  EXPECT_FLOAT_EQ(c.at(2, 1), 6.0f);
  Sum(c).Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 1.0f);
  EXPECT_FLOAT_EQ(b.grad()[3], 1.0f);
}

TEST(AutogradTest, GradAccumulatesOverSharedSubexpressions) {
  Tensor x = Tensor::FromData({1}, {3.0f}, true);
  Tensor y = Add(Mul(x, x), Mul(x, x));  // 2x^2, dy/dx = 4x = 12.
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 12.0f);
}

TEST(AutogradTest, DiamondGraphGradIsCorrect) {
  Tensor x = Tensor::FromData({1}, {2.0f}, true);
  Tensor a = Scale(x, 3.0f);
  Tensor b = Square(x);
  Tensor y = Sum(Mul(a, b));  // 3x^3 -> dy/dx = 9x^2 = 36.
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 36.0f);
}

// ---------------------------------------------------------------------------
// Fused transposed GEMMs
// ---------------------------------------------------------------------------

// Bitwise comparison: float == treats -0.0 == 0.0 and NaN != NaN, so
// compare the raw bit patterns.
void ExpectBitwiseEq(const std::vector<float>& a, const std::vector<float>& b,
                     const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0) << what;
}

TEST(MatMulNTTest, MatchesComposedTransposeBitwise) {
  Rng rng(5);
  Tensor a = Tensor::Randn({7, 9}, rng, 1.0f);
  Tensor b = Tensor::Randn({6, 9}, rng, 1.0f);
  Tensor a2 = Tensor::FromData(a.shape(), a.data(), /*requires_grad=*/true);
  Tensor b2 = Tensor::FromData(b.shape(), b.data(), /*requires_grad=*/true);
  Tensor fused = MatMulNT(a, b);
  Tensor composed = MatMul(a2, Transpose(b2));
  ExpectBitwiseEq(fused.data(), composed.data(), "forward");
  Sum(fused).Backward();
  Sum(composed).Backward();
  ExpectBitwiseEq(a.grad(), a2.grad(), "dA");
  ExpectBitwiseEq(b.grad(), b2.grad(), "dB");
}

TEST(MatMulNTTest, GradientCheck) {
  Rng rng(6);
  Tensor b = Tensor::Randn({4, 5}, rng, 1.0f, /*requires_grad=*/false);
  CheckGradient([&](const Tensor& a) { return Sum(MatMulNT(a, b)); },
                Tensor::Randn({3, 5}, rng, 1.0f));
  Tensor a = Tensor::Randn({3, 5}, rng, 1.0f, /*requires_grad=*/false);
  CheckGradient([&](const Tensor& w) { return Sum(MatMulNT(a, w)); },
                Tensor::Randn({4, 5}, rng, 1.0f));
}

TEST(MatMulTNTest, MatchesComposedTransposeBitwise) {
  Rng rng(7);
  Tensor a = Tensor::Randn({9, 6}, rng, 1.0f);
  Tensor b = Tensor::Randn({9, 4}, rng, 1.0f);
  Tensor a2 = Tensor::FromData(a.shape(), a.data(), /*requires_grad=*/true);
  Tensor b2 = Tensor::FromData(b.shape(), b.data(), /*requires_grad=*/true);
  Tensor fused = MatMulTN(a, b);
  Tensor composed = MatMul(Transpose(a2), b2);
  ExpectBitwiseEq(fused.data(), composed.data(), "forward");
  Sum(fused).Backward();
  Sum(composed).Backward();
  ExpectBitwiseEq(a.grad(), a2.grad(), "dA");
  ExpectBitwiseEq(b.grad(), b2.grad(), "dB");
}

TEST(MatMulTNTest, GradientCheck) {
  Rng rng(8);
  Tensor b = Tensor::Randn({5, 4}, rng, 1.0f, /*requires_grad=*/false);
  CheckGradient([&](const Tensor& a) { return Sum(MatMulTN(a, b)); },
                Tensor::Randn({5, 3}, rng, 1.0f));
  Tensor a = Tensor::Randn({5, 3}, rng, 1.0f, /*requires_grad=*/false);
  CheckGradient([&](const Tensor& w) { return Sum(MatMulTN(a, w)); },
                Tensor::Randn({5, 4}, rng, 1.0f));
}

// The fused LayerNorm+MatMul replays the composed ops' exact canonical
// sequences, so values AND gradients are bitwise identical to
// MatMul(LayerNorm(x, gamma, beta), w) from freshly zeroed gradients.
TEST(LayerNormMatMulTest, MatchesComposedBitwise) {
  Rng rng(9);
  Tensor x = Tensor::Randn({7, 13}, rng, 1.0f);
  Tensor gamma = Tensor::Randn({13}, rng, 0.3f);
  Tensor beta = Tensor::Randn({13}, rng, 0.3f);
  Tensor w = Tensor::Randn({13, 11}, rng, 0.5f);
  Tensor x2 = Tensor::FromData(x.shape(), x.data(), /*requires_grad=*/true);
  Tensor gamma2 = Tensor::FromData(gamma.shape(), gamma.data(), /*requires_grad=*/true);
  Tensor beta2 = Tensor::FromData(beta.shape(), beta.data(), /*requires_grad=*/true);
  Tensor w2 = Tensor::FromData(w.shape(), w.data(), /*requires_grad=*/true);
  Tensor fused = LayerNormMatMul(x, gamma, beta, w);
  Tensor composed = MatMul(LayerNorm(x2, gamma2, beta2), w2);
  ExpectBitwiseEq(fused.data(), composed.data(), "forward");
  Sum(Square(fused)).Backward();
  Sum(Square(composed)).Backward();
  ExpectBitwiseEq(x.grad(), x2.grad(), "dx");
  ExpectBitwiseEq(gamma.grad(), gamma2.grad(), "dgamma");
  ExpectBitwiseEq(beta.grad(), beta2.grad(), "dbeta");
  ExpectBitwiseEq(w.grad(), w2.grad(), "dW");
}

TEST(LayerNormMatMulTest, GradientCheck) {
  Rng rng(10);
  Tensor x = Tensor::Randn({4, 6}, rng, 1.0f, /*requires_grad=*/false);
  Tensor gamma = Tensor::Randn({6}, rng, 0.3f, /*requires_grad=*/false);
  Tensor beta = Tensor::Randn({6}, rng, 0.3f, /*requires_grad=*/false);
  Tensor w = Tensor::Randn({6, 5}, rng, 0.5f, /*requires_grad=*/false);
  CheckGradient(
      [&](const Tensor& a) { return Sum(Square(LayerNormMatMul(a, gamma, beta, w))); },
      Tensor::Randn({4, 6}, rng, 1.0f));
  CheckGradient(
      [&](const Tensor& g) { return Sum(Square(LayerNormMatMul(x, g, beta, w))); },
      Tensor::Randn({6}, rng, 0.3f));
  CheckGradient(
      [&](const Tensor& b) { return Sum(Square(LayerNormMatMul(x, gamma, b, w))); },
      Tensor::Randn({6}, rng, 0.3f));
  CheckGradient(
      [&](const Tensor& ww) { return Sum(Square(LayerNormMatMul(x, gamma, beta, ww))); },
      Tensor::Randn({6, 5}, rng, 0.5f));
}

// The zero short-circuit in the old MatMul made the flop count
// data-dependent; its removal must not change values or gradients for
// inputs containing exact zeros.
TEST(MatMulTest, ZeroEntriesForwardAndGradient) {
  Tensor a = Tensor::FromData({2, 3}, {0.0f, 2.0f, 0.0f, 4.0f, 0.0f, 6.0f});
  Tensor b = Tensor::FromData({3, 2}, {7, 8, 0, 10, 11, 0});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 20.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 94.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 32.0f);
  Tensor sparse = Tensor::FromData({2, 3}, {0.0f, 1.0f, 0.0f, 0.0f, -2.0f, 3.0f});
  CheckGradient([&](const Tensor& w) { return Sum(MatMul(sparse, w)); },
                Tensor::FromData({3, 2}, {0.0f, 0.5f, -1.0f, 0.0f, 2.0f, 0.0f},
                                 /*requires_grad=*/true));
}

// ---------------------------------------------------------------------------
// Kernel determinism: forward + backward results must be bitwise identical
// for every tensor.threads setting and every tile-size tuning
// (docs/KERNELS.md).
// ---------------------------------------------------------------------------

struct KernelStackResult {
  std::vector<float> loss;
  std::vector<float> dx;
  std::vector<float> dw;
  std::vector<float> dk;
  std::vector<float> dgamma;
  std::vector<float> dbeta;
  std::vector<float> dgamma2;
  std::vector<float> dbeta2;
};

// One compound forward+backward pass that drives every parallel kernel
// past the serial-work cutoff: plain/NT/TN GEMMs, the fused
// LayerNorm+MatMul, LayerNorm, Softmax, LogSoftmax, Gelu, Transpose,
// GatherRows (with duplicate indices), PickPerRow, ConcatRows, RowSum,
// Mean, and the elementwise kernels.
KernelStackResult RunKernelStack(int threads, const KernelTuning& tuning) {
  SetTensorThreads(threads);
  SetKernelTuning(tuning);
  Rng rng(77);
  Tensor x = Tensor::Randn({128, 80}, rng, 0.5f);
  Tensor w = Tensor::Randn({80, 48}, rng, 0.5f);
  Tensor k = Tensor::Randn({128, 80}, rng, 0.5f);
  Tensor gamma = Tensor::Randn({48}, rng, 0.2f);
  Tensor beta = Tensor::Randn({48}, rng, 0.2f);
  Tensor gamma2 = Tensor::Randn({80}, rng, 0.2f);
  Tensor beta2 = Tensor::Randn({80}, rng, 0.2f);

  Tensor h = LayerNorm(MatMul(x, w), gamma, beta);        // [128, 48]
  Tensor scores = MatMulNT(x, k);                         // [128, 128]
  Tensor mixed = MatMul(Softmax(scores), x);              // [128, 80]
  Tensor gram = MatMulTN(x, Gelu(mixed));                 // [80, 80]
  Tensor fused = LayerNormMatMul(mixed, gamma2, beta2, w);  // [128, 48]
  Tensor cat = Add(ConcatRows({h, fused}), beta);         // [256, 48] + bias
  std::vector<int64_t> picks(256);
  for (size_t i = 0; i < picks.size(); ++i) {
    picks[i] = static_cast<int64_t>((i * 7) % 48);
  }
  Tensor picked = PickPerRow(cat, picks);                 // [256]
  std::vector<int64_t> gidx(60);
  for (size_t i = 0; i < gidx.size(); ++i) {
    gidx[i] = static_cast<int64_t>((i * 13) % 128);  // Duplicates included.
  }
  Tensor rows = Transpose(GatherRows(mixed, gidx));       // [80, 60]
  Tensor rs = RowSum(rows);                               // [80]
  Tensor extras =
      Add(Add(Sum(Mul(rs, AddScalar(rs, 0.5f))), Mean(Exp(Scale(picked, 0.01f)))),
          Sum(Sub(h, fused)));
  Tensor loss = Add(
      Add(Add(Sum(Square(h)), Sum(LogSoftmax(gram))), Sum(Gelu(mixed))), extras);
  loss.Backward();

  KernelStackResult result;
  result.loss = loss.data();
  result.dx = x.grad();
  result.dw = w.grad();
  result.dk = k.grad();
  result.dgamma = gamma.grad();
  result.dbeta = beta.grad();
  result.dgamma2 = gamma2.grad();
  result.dbeta2 = beta2.grad();
  // Restore process defaults for the other tests.
  SetTensorThreads(0);
  SetKernelTuning(KernelTuning{});
  return result;
}

void ExpectStackEq(const KernelStackResult& a, const KernelStackResult& b) {
  ExpectBitwiseEq(a.loss, b.loss, "loss");
  ExpectBitwiseEq(a.dx, b.dx, "dx");
  ExpectBitwiseEq(a.dw, b.dw, "dw");
  ExpectBitwiseEq(a.dk, b.dk, "dk");
  ExpectBitwiseEq(a.dgamma, b.dgamma, "dgamma");
  ExpectBitwiseEq(a.dbeta, b.dbeta, "dbeta");
  ExpectBitwiseEq(a.dgamma2, b.dgamma2, "dgamma2");
  ExpectBitwiseEq(a.dbeta2, b.dbeta2, "dbeta2");
}

TEST(KernelDeterminismTest, BitwiseInvariantAcrossThreadCounts) {
  const KernelStackResult reference = RunKernelStack(1, KernelTuning{});
  EXPECT_TRUE(std::isfinite(reference.loss[0]));
  for (int threads : {2, 3, 8}) {
    ExpectStackEq(reference, RunKernelStack(threads, KernelTuning{}));
  }
}

TEST(KernelDeterminismTest, BitwiseInvariantAcrossTileSizes) {
  const KernelStackResult reference = RunKernelStack(1, KernelTuning{});
  std::vector<KernelTuning> tunings;
  {
    KernelTuning tiny;  // Degenerate one-row / tiny-block chunks.
    tiny.gemm_row_grain = 1;
    tiny.gemm_k_block = 3;
    tiny.row_grain = 1;
    tiny.elem_grain = 7;
    tunings.push_back(tiny);
    KernelTuning odd;
    odd.gemm_row_grain = 5;
    odd.gemm_k_block = 64;
    odd.row_grain = 9;
    odd.elem_grain = 1000;
    tunings.push_back(odd);
    KernelTuning huge;  // Single chunk for everything.
    huge.gemm_row_grain = 1 << 20;
    huge.gemm_k_block = 1 << 20;
    huge.row_grain = 1 << 20;
    huge.elem_grain = 1 << 20;
    tunings.push_back(huge);
  }
  for (const KernelTuning& tuning : tunings) {
    for (int threads : {1, 2, 8}) {
      ExpectStackEq(reference, RunKernelStack(threads, tuning));
    }
  }
}

// The SIMD tier must be bitwise-invisible: forcing the scalar fallback
// (the same path `HF_SIMD=off` selects) across the full thread x tile
// cross-product must reproduce the default tier exactly, values and
// gradients alike. On hardware without AVX2 the override is a no-op and
// this degenerates to scalar-vs-scalar, which is trivially green.
TEST(KernelDeterminismTest, BitwiseInvariantAcrossSimdLevels) {
  const KernelStackResult reference = RunKernelStack(1, KernelTuning{});
  KernelTuning odd;
  odd.gemm_row_grain = 5;
  odd.gemm_k_block = 64;
  odd.row_grain = 9;
  odd.elem_grain = 1000;
  for (const KernelTuning& tuning : {KernelTuning{}, odd}) {
    for (int threads : {1, 3, 8}) {
      SetSimdOverride(SimdLevel::kScalar);
      const KernelStackResult scalar_run = RunKernelStack(threads, tuning);
      ClearSimdOverride();
      ExpectStackEq(reference, scalar_run);
    }
  }
}

// Per-op SIMD<->scalar sweep over odd / unaligned widths: every width
// exercises the 8-lane vector tails (n % 8 in 0..7) plus the sub-width
// (n < 8) degenerate case. Each vectorized op appears in the loss so its
// forward AND backward kernels are compared bitwise across tiers.
TEST(KernelDeterminismTest, SimdScalarBitwisePerOpTailSweep) {
  auto run_all = [](int64_t n) {
    Rng rng(1000 + n);
    Tensor a = Tensor::Randn({3, n}, rng, 0.8f);
    Tensor b = Tensor::Randn({3, n}, rng, 0.8f);
    Tensor bias = Tensor::Randn({n}, rng, 0.5f);
    Tensor gamma = Tensor::Randn({n}, rng, 0.3f);
    Tensor beta = Tensor::Randn({n}, rng, 0.3f);
    Tensor w = Tensor::Randn({n, 5}, rng, 0.5f);

    Tensor t1 = Sum(Square(MatMul(a, w)));
    Tensor t2 = Sum(Gelu(MatMulNT(a, b)));
    Tensor t3 = Sum(Square(MatMulTN(a, b)));
    Tensor t4 = Sum(Mul(LayerNorm(a, gamma, beta), b));
    Tensor t5 = Sum(LayerNormMatMul(a, gamma, beta, w));
    Tensor t6 = Sum(Mul(LogSoftmax(a), Softmax(b)));
    Tensor t7 = Sum(Exp(Scale(a, 0.1f)));
    Tensor t8 = Sum(Sub(Add(a, bias), Mul(a, b)));
    Tensor t9 = Sum(AddScalar(Scale(Add(a, b), -0.5f), 0.25f));
    Tensor t10 = Mean(Square(a));
    Tensor t11 = Sum(Square(RowSum(Transpose(a))));
    Tensor t12 = Sum(SliceRows(ConcatRows({a, b}), 1, 5));
    const std::vector<int64_t> gather_idx = {0, 2, 1, 2, 0};  // Duplicates.
    Tensor t13 = Sum(Square(GatherRows(b, gather_idx)));
    std::vector<int64_t> pick_idx(3);
    for (size_t i = 0; i < pick_idx.size(); ++i) {
      pick_idx[i] = static_cast<int64_t>((i * 5) % n);
    }
    Tensor t14 = Sum(PickPerRow(a, pick_idx));
    Tensor loss = t1;
    for (const Tensor& t : {t2, t3, t4, t5, t6, t7, t8, t9, t10, t11, t12, t13, t14}) {
      loss = Add(loss, t);
    }
    loss.Backward();

    std::vector<float> out = loss.data();
    for (const Tensor* t : {&a, &b, &bias, &gamma, &beta, &w}) {
      out.insert(out.end(), t->grad().begin(), t->grad().end());
    }
    return out;
  };
  for (int64_t n : {1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 33, 63, 65, 129}) {
    SetSimdOverride(SimdLevel::kScalar);
    const std::vector<float> scalar = run_all(n);
    SetSimdOverride(SimdLevel::kAvx2Fma);  // Clamped to scalar without AVX2.
    const std::vector<float> vectorized = run_all(n);
    ClearSimdOverride();
    const std::string label = "n=" + std::to_string(n);
    ExpectBitwiseEq(scalar, vectorized, label.c_str());
  }
}

// Kernels invoked from pool tasks (the ModelWorkerGroup dispatch path)
// must fall back to caller-runs instead of submitting to the pool and
// blocking — saturating the shared pool with kernel calls must neither
// deadlock nor change results.
TEST(KernelDeterminismTest, CallerRunsOnPoolThreadsMatchesMainThread) {
  SetTensorThreads(8);
  Rng rng(21);
  const Tensor a = Tensor::Randn({96, 64}, rng, 1.0f, /*requires_grad=*/false);
  const Tensor b = Tensor::Randn({64, 96}, rng, 1.0f, /*requires_grad=*/false);
  const std::vector<float> expected = MatMul(a, b).data();
  const int tasks = 2 * ThreadPool::Shared().size();
  std::vector<std::vector<float>> results(static_cast<size_t>(tasks));
  ThreadPool::Shared().ParallelFor(tasks, [&](int t) {
    EXPECT_TRUE(ThreadPool::OnPoolThread());
    results[static_cast<size_t>(t)] = MatMul(a, b).data();
  });
  SetTensorThreads(0);
  EXPECT_FALSE(ThreadPool::OnPoolThread());
  for (const std::vector<float>& result : results) {
    ExpectBitwiseEq(expected, result, "pool-thread matmul");
  }
}

}  // namespace
}  // namespace hybridflow
