// Tests for the src/obs/ observability subsystem: metrics registry
// (including concurrent updates — run under TSan by tools/check.sh),
// wall-clock tracing, JSON utilities, telemetry sinks, and the single- and
// dual-plane Chrome trace exporters.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"
#include "src/obs/dual_trace.h"
#include "src/obs/json_util.h"
#include "src/obs/metrics.h"
#include "src/obs/telemetry.h"
#include "src/obs/trace.h"
#include "src/sim/timeline.h"
#include "src/sim/trace_export.h"
#include "src/sim/topology.h"

namespace hybridflow {
namespace {

// ---------------------------------------------------------------------------
// JSON utilities
// ---------------------------------------------------------------------------

TEST(ObsJsonTest, EscapesQuotesBackslashesAndControlCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
  EXPECT_EQ(JsonEscape("a\b\f"), "a\\b\\f");
}

TEST(ObsJsonTest, NumbersSerializeWithoutNoise) {
  EXPECT_EQ(JsonNumber(3.0), "3");
  EXPECT_EQ(JsonNumber(-17.0), "-17");
  EXPECT_EQ(JsonNumber(0.5), "0.5");
  // Non-finite values are not representable in JSON.
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(ObsJsonTest, ValidatorAcceptsWellFormedDocuments) {
  EXPECT_TRUE(JsonValidate("{}"));
  EXPECT_TRUE(JsonValidate("[]"));
  EXPECT_TRUE(JsonValidate("{\"a\":[1,2.5,-3e2],\"b\":{\"c\":null},\"d\":\"x\\n\"}"));
  EXPECT_TRUE(JsonValidate("  [true, false, null]  "));
}

TEST(ObsJsonTest, ValidatorRejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(JsonValidate("{", &error));
  EXPECT_FALSE(JsonValidate("{\"a\":}", &error));
  EXPECT_FALSE(JsonValidate("[1,]", &error));
  EXPECT_FALSE(JsonValidate("[1] trailing", &error));
  EXPECT_FALSE(JsonValidate("{\"a\":1,}", &error));
  // Raw control characters are illegal inside JSON strings.
  EXPECT_FALSE(JsonValidate(std::string("\"a\nb\""), &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(ObsMetricsTest, CountersGaugesAndHistogramsRecordValues) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("test.events");
  counter.Increment();
  counter.Increment(2.5);
  EXPECT_DOUBLE_EQ(counter.Value(), 3.5);

  Gauge& gauge = registry.GetGauge("test.occupancy");
  gauge.Set(17.0);
  gauge.Set(4.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 4.0);

  Histogram& histogram = registry.GetHistogram("test.latency_us", {1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // bucket le=1
  histogram.Observe(5.0);    // bucket le=10
  histogram.Observe(5000.0); // overflow bucket
  EXPECT_EQ(histogram.TotalCount(), 3u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 5005.5);
  const std::vector<uint64_t> counts = histogram.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(ObsMetricsTest, LabelsCreateDistinctSeriesAndOrderIsCanonical) {
  MetricsRegistry registry;
  Counter& ab = registry.GetCounter("test.ops", {{"a", "1"}, {"b", "2"}});
  Counter& ba = registry.GetCounter("test.ops", {{"b", "2"}, {"a", "1"}});
  Counter& other = registry.GetCounter("test.ops", {{"a", "1"}, {"b", "3"}});
  EXPECT_EQ(&ab, &ba);  // Label order never splits a series.
  EXPECT_NE(&ab, &other);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(ObsMetricsTest, BucketHelpersProduceAscendingBounds) {
  EXPECT_EQ(ExponentialBuckets(1.0, 10.0, 4), (std::vector<double>{1.0, 10.0, 100.0, 1000.0}));
  EXPECT_EQ(LinearBuckets(0.0, 2.5, 3), (std::vector<double>{0.0, 2.5, 5.0}));
}

TEST(ObsMetricsTest, ConcurrentUpdatesAreExact) {
  // TSan-relevant: many threads hammer one counter and one histogram
  // through the registry; final counts must be exact.
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads, [&registry](int) {
    Counter& counter = registry.GetCounter("test.concurrent", {{"kind", "counter"}});
    Histogram& histogram =
        registry.GetHistogram("test.concurrent_us", {1.0, 100.0}, {{"kind", "histogram"}});
    Gauge& gauge = registry.GetGauge("test.concurrent_gauge");
    for (int i = 0; i < kPerThread; ++i) {
      counter.Increment();
      histogram.Observe(static_cast<double>(i % 200));
      gauge.Set(static_cast<double>(i));
    }
  });
  EXPECT_DOUBLE_EQ(registry.GetCounter("test.concurrent", {{"kind", "counter"}}).Value(),
                   static_cast<double>(kThreads * kPerThread));
  Histogram& histogram =
      registry.GetHistogram("test.concurrent_us", {1.0, 100.0}, {{"kind", "histogram"}});
  EXPECT_EQ(histogram.TotalCount(), static_cast<uint64_t>(kThreads * kPerThread));
  const std::vector<uint64_t> counts = histogram.BucketCounts();
  EXPECT_EQ(counts[0] + counts[1] + counts[2], static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(ObsMetricsTest, JsonLinesExportIsStableAndValid) {
  MetricsRegistry registry;
  registry.GetCounter("b.counter", {{"model", "actor"}}).Increment(2);
  registry.GetGauge("a.gauge").Set(1.5);
  registry.GetHistogram("c.hist", {1.0, 10.0}).Observe(3.0);
  const std::string jsonl = registry.ToJsonLines();
  const std::string expected =
      "{\"name\":\"a.gauge\",\"type\":\"gauge\",\"labels\":{},\"value\":1.5}\n"
      "{\"name\":\"b.counter\",\"type\":\"counter\",\"labels\":{\"model\":\"actor\"},"
      "\"value\":2}\n"
      "{\"name\":\"c.hist\",\"type\":\"histogram\",\"labels\":{},\"count\":1,\"sum\":3,"
      "\"buckets\":[{\"le\":1,\"count\":0},{\"le\":10,\"count\":1},"
      "{\"le\":\"+inf\",\"count\":0}]}\n";
  EXPECT_EQ(jsonl, expected);
  // Every line must parse as standalone JSON.
  std::istringstream lines(jsonl);
  for (std::string line; std::getline(lines, line);) {
    std::string error;
    EXPECT_TRUE(JsonValidate(line, &error)) << line << ": " << error;
  }
}

TEST(ObsMetricsTest, TextExportIsHumanReadable) {
  MetricsRegistry registry;
  registry.GetCounter("x.count", {{"op", "gen"}}).Increment(4);
  registry.GetHistogram("y.hist", {10.0}).Observe(4.0);
  const std::string text = registry.ToText();
  EXPECT_NE(text.find("x.count{op=gen} = 4 (counter)"), std::string::npos);
  // p50/p90/p99 come from SnapshotQuantile's bucket interpolation: the one
  // observation fills the [0, 10] bucket, whose upper edge every rank hits.
  EXPECT_NE(text.find("y.hist = count=1 sum=4 mean=4 p50=10 p90=10 p99=10 (histogram)"),
            std::string::npos);
}

TEST(ObsMetricsTest, GlobalRegistryIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

// ---------------------------------------------------------------------------
// Wall-clock tracing
// ---------------------------------------------------------------------------

TEST(ObsTraceTest, DisabledTracerRecordsNothing) {
  WallclockTracer& tracer = WallclockTracer::Global();
  tracer.SetEnabled(false);
  tracer.Clear();
  { HF_TRACE_SCOPE("ignored", "test"); }
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(ObsTraceTest, EnabledTracerRecordsScopedSpans) {
  WallclockTracer& tracer = WallclockTracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);
  {
    HF_TRACE_SCOPE("outer", "test");
    { HF_TRACE_SCOPE("inner", "test"); }
  }
  tracer.SetEnabled(false);
  const std::vector<WallSpan> spans = tracer.Snapshot();
  tracer.Clear();
  ASSERT_EQ(spans.size(), 2u);
  // Inner closes first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[0].category, "test");
  EXPECT_GE(spans[0].duration_us, 0.0);
  EXPECT_GE(spans[1].duration_us, spans[0].duration_us);
  EXPECT_LE(spans[1].start_us, spans[0].start_us);
}

TEST(ObsTraceTest, MinDurationThresholdDropsShortSpans) {
  WallclockTracer& tracer = WallclockTracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);
  tracer.SetMinDurationUs(1e6);  // Nothing in this test runs for a second.
  { HF_TRACE_SCOPE("short", "test"); }
  tracer.Record(WallSpan{"long", "test", 0, 0.0, 2e6});
  tracer.SetMinDurationUs(0.0);
  tracer.SetEnabled(false);
  const std::vector<WallSpan> spans = tracer.Snapshot();
  tracer.Clear();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "long");
}

TEST(ObsTraceTest, CategorySamplingKeepsOneInEvery) {
  WallclockTracer& tracer = WallclockTracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);
  tracer.SetCategorySampling("tensor", 4);
  for (int i = 0; i < 8; ++i) {
    tracer.Record(WallSpan{"gemm", "tensor", 0, static_cast<double>(i), 1.0});
  }
  tracer.Record(WallSpan{"dispatch", "controller", 0, 100.0, 1.0});
  tracer.SetCategorySampling("", 1);
  tracer.SetEnabled(false);
  const std::vector<WallSpan> spans = tracer.Snapshot();
  tracer.Clear();
  // 8 tensor spans decimated 4:1 -> 2 kept; the other category is intact.
  int tensor_spans = 0;
  int other_spans = 0;
  for (const WallSpan& span : spans) {
    if (span.category == "tensor") {
      ++tensor_spans;
    } else {
      ++other_spans;
    }
  }
  EXPECT_EQ(tensor_spans, 2);
  EXPECT_EQ(other_spans, 1);
}

TEST(ObsTraceTest, ConcurrentRecordingIsSafeAndComplete) {
  WallclockTracer& tracer = WallclockTracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);
  constexpr int kTasks = 64;
  ThreadPool pool(4);
  pool.ParallelFor(kTasks, [](int) { HF_TRACE_SCOPE("task", "test"); });
  tracer.SetEnabled(false);
  // The pool's own threadpool.task spans are also recorded; count only ours.
  const std::vector<WallSpan> spans = tracer.Snapshot();
  tracer.Clear();
  int ours = 0;
  for (const WallSpan& span : spans) {
    if (span.name == "task") ++ours;
  }
  EXPECT_EQ(ours, kTasks);
}

// ---------------------------------------------------------------------------
// Sim-trace exporter (regression tests for the leading-comma bug and the
// queue_delay_us annotation)
// ---------------------------------------------------------------------------

TEST(ObsTraceExportTest, EmptyWorldWithSpansEmitsValidJson) {
  // Regression: with zero device-metadata lines the exporter used to emit a
  // leading comma before the first span, producing invalid JSON.
  TraceSpan span;
  span.name = "op";
  span.category = "infer";
  span.devices = {0};
  span.ready = 0.0;
  span.start = 1.0;
  span.end = 2.0;
  std::ostringstream out;
  out << "{\"traceEvents\":[\n";
  bool first = true;
  AppendSimTraceEvents({span}, /*world_size=*/0, /*pid=*/0, &first, out);
  out << "\n]}\n";
  std::string error;
  EXPECT_TRUE(JsonValidate(out.str(), &error)) << out.str() << ": " << error;
}

TEST(ObsTraceExportTest, SpansCarryQueueDelayMicros) {
  TraceSpan span;
  span.name = "op";
  span.category = "train";
  span.devices = {0};
  span.ready = 1.0;
  span.start = 3.5;  // 2.5 s of queue wait -> 2.5e6 us.
  span.end = 4.0;
  std::ostringstream out;
  bool first = true;
  AppendSimTraceEvents({span}, /*world_size=*/1, /*pid=*/0, &first, out);
  EXPECT_NE(out.str().find("\"queue_delay_us\":2500000.000"), std::string::npos) << out.str();
}

TEST(ObsTraceExportTest, ClusterTraceRoundTripsThroughValidator) {
  ClusterState state(ClusterSpec::WithGpus(2));
  state.ScheduleOp("a.gen", "generate", {0, 1}, 0.0, 1.0);
  state.ScheduleOp("a.train", "train", {0}, 1.0, 0.5);
  const std::string json = TraceToChromeJson(state);
  std::string error;
  EXPECT_TRUE(JsonValidate(json, &error)) << error;
  EXPECT_NE(json.find("\"name\":\"a.gen\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Dual-plane merged trace
// ---------------------------------------------------------------------------

TEST(ObsDualTraceTest, MergedTraceIsValidJsonWithBothProcessGroups) {
  ClusterState state(ClusterSpec::WithGpus(2));
  state.ScheduleOp("actor.generate", "generate", {0, 1}, 0.0, 2.0);
  std::vector<WallSpan> wall;
  wall.push_back(WallSpan{"dispatch", "controller", 0, 10.0, 5.0});
  wall.push_back(WallSpan{"task \"quoted\"", "threadpool", 1, 12.0, 1.0});
  const std::string json = DualPlaneChromeJson(state, wall);
  std::string error;
  ASSERT_TRUE(JsonValidate(json, &error)) << json << ": " << error;
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("simulated cluster (sim-time)"), std::string::npos);
  EXPECT_NE(json.find("framework (wall-clock)"), std::string::npos);
  EXPECT_NE(json.find("task \\\"quoted\\\""), std::string::npos);
}

TEST(ObsDualTraceTest, EmptyWallPlaneStillProducesValidJson) {
  ClusterState state(ClusterSpec::WithGpus(1));
  const std::string json = DualPlaneChromeJson(state, {});
  std::string error;
  EXPECT_TRUE(JsonValidate(json, &error)) << error;
}

// ---------------------------------------------------------------------------
// Telemetry sinks
// ---------------------------------------------------------------------------

TEST(ObsTelemetryTest, FieldsSerializePreservingInsertionOrder) {
  TelemetryFields record;
  record.Number("iteration", 3).Text("algorithm", "PPO").Number("loss", 0.25);
  EXPECT_EQ(record.ToJson(), "{\"iteration\":3,\"algorithm\":\"PPO\",\"loss\":0.25}");
  EXPECT_TRUE(JsonValidate(record.ToJson()));
}

TEST(ObsTelemetryTest, SinkWritesOneValidJsonObjectPerLine) {
  const std::string path = ::testing::TempDir() + "/obs_telemetry_test.jsonl";
  {
    TelemetrySink sink(path);
    ASSERT_TRUE(sink.ok());
    for (int i = 0; i < 3; ++i) {
      TelemetryFields record;
      record.Number("iteration", i).Number("value", 1.5 * i);
      sink.Append(record);
    }
    EXPECT_EQ(sink.records_written(), 3u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  int lines = 0;
  for (std::string line; std::getline(in, line);) {
    std::string error;
    EXPECT_TRUE(JsonValidate(line, &error)) << line << ": " << error;
    ++lines;
  }
  EXPECT_EQ(lines, 3);
  std::remove(path.c_str());
}

TEST(ObsTelemetryTest, BenchReportWritesNamedJsonFile) {
  BenchReport report("obs_test_panel");
  report.AddRow().Text("system", "HybridFlow").Number("gpus", 8).Number("tokens_per_sec", 123.5);
  report.AddRow().Text("system", "DS-Chat").Number("gpus", 8).Number("tokens_per_sec", 45.0);
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(report.WriteJson(dir));
  const std::string path = report.FilePath(dir);
  EXPECT_NE(path.find("BENCH_obs_test_panel.json"), std::string::npos);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  EXPECT_TRUE(JsonValidate(buffer.str(), &error)) << error;
  EXPECT_NE(buffer.str().find("\"bench\":\"obs_test_panel\""), std::string::npos);
  EXPECT_NE(buffer.str().find("\"tokens_per_sec\":123.5"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hybridflow
