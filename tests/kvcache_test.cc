#include <gtest/gtest.h>

#include <set>

#include "src/kvcache/block_manager.h"

namespace hybridflow {
namespace {

KvBlockConfig SmallConfig(int64_t blocks = 8, int64_t block_tokens = 4) {
  KvBlockConfig config;
  config.block_tokens = block_tokens;
  config.num_blocks = blocks;
  config.bytes_per_token = 100.0;
  return config;
}

TEST(KvBlockManagerTest, AddSequenceAllocatesCeilBlocks) {
  KvBlockManager manager(SmallConfig());
  ASSERT_TRUE(manager.AddSequence(1, 5));  // ceil(5/4) = 2 blocks.
  EXPECT_EQ(manager.used_blocks(), 2);
  EXPECT_EQ(manager.SequenceTokens(1), 5);
  EXPECT_EQ(manager.BlockTable(1).size(), 2u);
}

TEST(KvBlockManagerTest, AppendAllocatesAtBlockBoundary) {
  KvBlockManager manager(SmallConfig());
  ASSERT_TRUE(manager.AddSequence(1, 4));  // Exactly one full block.
  EXPECT_EQ(manager.used_blocks(), 1);
  ASSERT_TRUE(manager.AppendToken(1));  // Token 5 -> new block.
  EXPECT_EQ(manager.used_blocks(), 2);
  ASSERT_TRUE(manager.AppendToken(1));  // Token 6 -> same block.
  EXPECT_EQ(manager.used_blocks(), 2);
}

TEST(KvBlockManagerTest, ZeroTokenSequenceHoldsNoBlocks) {
  KvBlockManager manager(SmallConfig());
  ASSERT_TRUE(manager.AddSequence(1, 0));
  EXPECT_EQ(manager.used_blocks(), 0);
  ASSERT_TRUE(manager.AppendToken(1));  // First token allocates.
  EXPECT_EQ(manager.used_blocks(), 1);
}

TEST(KvBlockManagerTest, ExhaustionIsReportedNotFatal) {
  KvBlockManager manager(SmallConfig(/*blocks=*/2));
  ASSERT_TRUE(manager.AddSequence(1, 8));  // Uses both blocks.
  EXPECT_FALSE(manager.AddSequence(2, 1));
  EXPECT_FALSE(manager.HasSequence(2));  // Nothing leaked.
  EXPECT_FALSE(manager.AppendToken(1));  // Boundary, no block left.
  EXPECT_EQ(manager.SequenceTokens(1), 8);
}

TEST(KvBlockManagerTest, FreeRecyclesBlocks) {
  KvBlockManager manager(SmallConfig(/*blocks=*/2));
  ASSERT_TRUE(manager.AddSequence(1, 8));
  manager.FreeSequence(1);
  EXPECT_EQ(manager.free_blocks(), 2);
  ASSERT_TRUE(manager.AddSequence(2, 8));
}

TEST(KvBlockManagerTest, BlockTablesAreDisjointAcrossSequences) {
  KvBlockManager manager(SmallConfig(/*blocks=*/8));
  ASSERT_TRUE(manager.AddSequence(1, 8));
  ASSERT_TRUE(manager.AddSequence(2, 8));
  std::set<int64_t> blocks;
  for (int64_t block : manager.BlockTable(1)) {
    blocks.insert(block);
  }
  for (int64_t block : manager.BlockTable(2)) {
    EXPECT_EQ(blocks.count(block), 0u) << "block " << block << " double-allocated";
  }
}

TEST(KvBlockManagerTest, OccupancyReflectsFragmentation) {
  KvBlockManager manager(SmallConfig());
  ASSERT_TRUE(manager.AddSequence(1, 1));  // 1 token in a 4-token block.
  EXPECT_DOUBLE_EQ(manager.Occupancy(), 0.25);
  ASSERT_TRUE(manager.AppendToken(1));
  EXPECT_DOUBLE_EQ(manager.Occupancy(), 0.5);
}

TEST(KvBlockManagerTest, UsedBytesAndCapacity) {
  KvBlockManager manager(SmallConfig(/*blocks=*/8, /*block_tokens=*/4));
  ASSERT_TRUE(manager.AddSequence(1, 8));
  EXPECT_DOUBLE_EQ(manager.used_bytes(), 2 * 4 * 100.0);
  // 6 free blocks; sequences of 12 tokens need 3 blocks -> 2 fit.
  EXPECT_EQ(manager.CapacitySequences(12), 2);
}

// --- Admission control & rollout extensions -----------------------------------

TEST(KvBlockManagerTest, CanAdmitMatchesBlockArithmetic) {
  KvBlockManager manager(SmallConfig(/*blocks=*/4, /*block_tokens=*/4));
  EXPECT_TRUE(manager.CanAdmit(/*prompt_tokens=*/16, /*reserve_tokens=*/0));   // Exactly 4.
  EXPECT_FALSE(manager.CanAdmit(/*prompt_tokens=*/16, /*reserve_tokens=*/1));  // 5th block.
  ASSERT_TRUE(manager.AddSequence(1, 8));  // 2 blocks used.
  EXPECT_TRUE(manager.CanAdmit(5, 3));     // ceil(8/4) = 2 <= 2 free.
  EXPECT_FALSE(manager.CanAdmit(9, 0));    // 3 blocks > 2 free.
  // Probing must not allocate anything.
  EXPECT_EQ(manager.used_blocks(), 2);
  EXPECT_EQ(manager.num_sequences(), 1);
}

TEST(KvBlockManagerTest, FreeSequencesReleasesInBulk) {
  KvBlockManager manager(SmallConfig(/*blocks=*/8));
  ASSERT_TRUE(manager.AddSequence(1, 8));
  ASSERT_TRUE(manager.AddSequence(2, 4));
  ASSERT_TRUE(manager.AddSequence(3, 4));
  manager.FreeSequences({1, 3});
  EXPECT_FALSE(manager.HasSequence(1));
  EXPECT_TRUE(manager.HasSequence(2));
  EXPECT_FALSE(manager.HasSequence(3));
  EXPECT_EQ(manager.used_blocks(), 1);
  EXPECT_EQ(manager.free_blocks(), 7);
}

TEST(KvBlockManagerTest, HighWaterTracksPeakNotCurrentUsage) {
  KvBlockManager manager(SmallConfig(/*blocks=*/8));
  EXPECT_EQ(manager.high_water_blocks(), 0);
  ASSERT_TRUE(manager.AddSequence(1, 8));  // 2 blocks.
  ASSERT_TRUE(manager.AddSequence(2, 8));  // 4 total.
  EXPECT_EQ(manager.high_water_blocks(), 4);
  manager.FreeSequence(1);
  EXPECT_EQ(manager.used_blocks(), 2);
  EXPECT_EQ(manager.high_water_blocks(), 4);  // Monotone.
  ASSERT_TRUE(manager.AddSequence(3, 4));     // Back to 3 used: no new peak.
  EXPECT_EQ(manager.high_water_blocks(), 4);
  ASSERT_TRUE(manager.AppendToken(3));  // 5th token -> new block -> 4 used.
  ASSERT_TRUE(manager.AddSequence(4, 4));
  EXPECT_EQ(manager.high_water_blocks(), 5);
}

TEST(KvBlockManagerTest, InternalFragmentationComplementsOccupancy) {
  KvBlockManager manager(SmallConfig());
  ASSERT_TRUE(manager.AddSequence(1, 1));  // 1 of 4 slots in its block.
  EXPECT_DOUBLE_EQ(manager.InternalFragmentation(), 0.75);
  ASSERT_TRUE(manager.AppendToken(1));
  EXPECT_DOUBLE_EQ(manager.InternalFragmentation(), 0.5);
}

// The rollout scheduler's exhaustion protocol: on a failed append, free a
// victim, requeue it, and later re-admit it at its full grown context.
TEST(KvBlockManagerTest, PreemptResumeCycleRecomputesAtFullContext) {
  KvBlockManager manager(SmallConfig(/*blocks=*/4, /*block_tokens=*/2));
  ASSERT_TRUE(manager.AddSequence(1, 4));  // 2 blocks.
  ASSERT_TRUE(manager.AddSequence(2, 4));  // 4 blocks: cache is full.
  EXPECT_FALSE(manager.AppendToken(1));    // Exhausted at the boundary.
  manager.FreeSequence(2);                 // Preempt the youngest.
  ASSERT_TRUE(manager.AppendToken(1));     // Victim's block is reusable.
  EXPECT_EQ(manager.SequenceTokens(1), 5);
  manager.FreeSequence(1);                 // Seq 1 finishes.
  // Resume: seq 2 re-admits with its grown context (4 prompt + 2 generated).
  ASSERT_TRUE(manager.CanAdmit(6, 0));
  ASSERT_TRUE(manager.AddSequence(2, 6));
  EXPECT_EQ(manager.SequenceTokens(2), 6);
  EXPECT_EQ(manager.used_blocks(), 3);
  EXPECT_EQ(manager.high_water_blocks(), 4);
}

TEST(DistributedKvManagerTest, CanAdmitAndBulkFreeStayInLockstep) {
  DistributedKvManager manager(2, SmallConfig(/*blocks=*/4));
  EXPECT_TRUE(manager.CanAdmit(16, 0));
  EXPECT_FALSE(manager.CanAdmit(16, 1));
  ASSERT_TRUE(manager.AddSequence(1, 8));
  ASSERT_TRUE(manager.AddSequence(2, 4));
  EXPECT_EQ(manager.high_water_blocks(), 3);
  manager.FreeSequences({1, 2});
  EXPECT_TRUE(manager.TablesInLockstep());
  EXPECT_EQ(manager.rank(0).used_blocks(), 0);
  EXPECT_EQ(manager.rank(1).used_blocks(), 0);
  EXPECT_EQ(manager.high_water_blocks(), 3);  // Peak survives the free.
}

// --- Distributed (TP-sharded) manager -----------------------------------------

TEST(DistributedKvManagerTest, RanksStayInLockstep) {
  DistributedKvManager manager(4, SmallConfig());
  ASSERT_TRUE(manager.AddSequence(1, 6));
  ASSERT_TRUE(manager.AppendToken(1));
  ASSERT_TRUE(manager.AddSequence(2, 3));
  EXPECT_TRUE(manager.TablesInLockstep());
  manager.FreeSequence(1);
  EXPECT_TRUE(manager.TablesInLockstep());
  EXPECT_EQ(manager.rank(0).num_sequences(), 1);
  EXPECT_EQ(manager.rank(3).num_sequences(), 1);
}

TEST(DistributedKvManagerTest, AllOrNothingOnExhaustion) {
  DistributedKvManager manager(2, SmallConfig(/*blocks=*/2));
  ASSERT_TRUE(manager.AddSequence(1, 8));
  EXPECT_FALSE(manager.AppendToken(1));
  EXPECT_TRUE(manager.TablesInLockstep());
  EXPECT_EQ(manager.rank(0).SequenceTokens(1), 8);
  EXPECT_EQ(manager.rank(1).SequenceTokens(1), 8);
}

TEST(DistributedKvManagerTest, BytesShardAcrossRanks) {
  KvBlockConfig config = SmallConfig();
  config.bytes_per_token = 50.0;  // Per-rank shard of a 200 B/token cache at t_g=4.
  DistributedKvManager manager(4, config);
  ASSERT_TRUE(manager.AddSequence(1, 4));
  EXPECT_DOUBLE_EQ(manager.total_used_bytes(), 4 * 4 * 50.0);
}

// Simulated generation loop: waves emerge from capacity, nothing leaks.
TEST(DistributedKvManagerTest, WaveSchedulingDrainsEverything) {
  DistributedKvManager manager(2, SmallConfig(/*blocks=*/16, /*block_tokens=*/4));
  const int64_t prompt = 8;
  const int64_t response = 8;
  int64_t next = 0;
  int64_t completed = 0;
  std::vector<int64_t> active;
  const int64_t total_sequences = 20;
  int waves = 0;
  const int64_t blocks_per_full_sequence = (prompt + response + 3) / 4;
  while (completed < total_sequences) {
    // Admit only sequences whose full length is guaranteed to fit, so the
    // decode loop never stalls mid-sequence (vLLM-style admission control).
    while (next < total_sequences &&
           (static_cast<int64_t>(active.size()) + 1) * blocks_per_full_sequence <=
               manager.rank(0).config().num_blocks &&
           manager.AddSequence(next, prompt)) {
      active.push_back(next);
      next += 1;
    }
    ASSERT_FALSE(active.empty()) << "deadlock: nothing admitted";
    waves += 1;
    // Decode all active sequences to completion.
    for (int64_t id : active) {
      for (int64_t step = 0; step < response; ++step) {
        ASSERT_TRUE(manager.AppendToken(id));
      }
      manager.FreeSequence(id);
      completed += 1;
    }
    active.clear();
  }
  EXPECT_GT(waves, 1);  // Capacity forced batching into waves.
  EXPECT_EQ(manager.rank(0).used_blocks(), 0);
  EXPECT_TRUE(manager.TablesInLockstep());
}

}  // namespace
}  // namespace hybridflow
