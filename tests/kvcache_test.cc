#include <gtest/gtest.h>

#include <set>

#include "src/kvcache/block_manager.h"

namespace hybridflow {
namespace {

KvBlockConfig SmallConfig(int64_t blocks = 8, int64_t block_tokens = 4) {
  KvBlockConfig config;
  config.block_tokens = block_tokens;
  config.num_blocks = blocks;
  config.bytes_per_token = 100.0;
  return config;
}

TEST(KvBlockManagerTest, AddSequenceAllocatesCeilBlocks) {
  KvBlockManager manager(SmallConfig());
  ASSERT_TRUE(manager.AddSequence(1, 5));  // ceil(5/4) = 2 blocks.
  EXPECT_EQ(manager.used_blocks(), 2);
  EXPECT_EQ(manager.SequenceTokens(1), 5);
  EXPECT_EQ(manager.BlockTable(1).size(), 2u);
}

TEST(KvBlockManagerTest, AppendAllocatesAtBlockBoundary) {
  KvBlockManager manager(SmallConfig());
  ASSERT_TRUE(manager.AddSequence(1, 4));  // Exactly one full block.
  EXPECT_EQ(manager.used_blocks(), 1);
  ASSERT_TRUE(manager.AppendToken(1));  // Token 5 -> new block.
  EXPECT_EQ(manager.used_blocks(), 2);
  ASSERT_TRUE(manager.AppendToken(1));  // Token 6 -> same block.
  EXPECT_EQ(manager.used_blocks(), 2);
}

TEST(KvBlockManagerTest, ZeroTokenSequenceHoldsNoBlocks) {
  KvBlockManager manager(SmallConfig());
  ASSERT_TRUE(manager.AddSequence(1, 0));
  EXPECT_EQ(manager.used_blocks(), 0);
  ASSERT_TRUE(manager.AppendToken(1));  // First token allocates.
  EXPECT_EQ(manager.used_blocks(), 1);
}

TEST(KvBlockManagerTest, ExhaustionIsReportedNotFatal) {
  KvBlockManager manager(SmallConfig(/*blocks=*/2));
  ASSERT_TRUE(manager.AddSequence(1, 8));  // Uses both blocks.
  EXPECT_FALSE(manager.AddSequence(2, 1));
  EXPECT_FALSE(manager.HasSequence(2));  // Nothing leaked.
  EXPECT_FALSE(manager.AppendToken(1));  // Boundary, no block left.
  EXPECT_EQ(manager.SequenceTokens(1), 8);
}

TEST(KvBlockManagerTest, FreeRecyclesBlocks) {
  KvBlockManager manager(SmallConfig(/*blocks=*/2));
  ASSERT_TRUE(manager.AddSequence(1, 8));
  manager.FreeSequence(1);
  EXPECT_EQ(manager.free_blocks(), 2);
  ASSERT_TRUE(manager.AddSequence(2, 8));
}

TEST(KvBlockManagerTest, BlockTablesAreDisjointAcrossSequences) {
  KvBlockManager manager(SmallConfig(/*blocks=*/8));
  ASSERT_TRUE(manager.AddSequence(1, 8));
  ASSERT_TRUE(manager.AddSequence(2, 8));
  std::set<int64_t> blocks;
  for (int64_t block : manager.BlockTable(1)) {
    blocks.insert(block);
  }
  for (int64_t block : manager.BlockTable(2)) {
    EXPECT_EQ(blocks.count(block), 0u) << "block " << block << " double-allocated";
  }
}

TEST(KvBlockManagerTest, OccupancyReflectsFragmentation) {
  KvBlockManager manager(SmallConfig());
  ASSERT_TRUE(manager.AddSequence(1, 1));  // 1 token in a 4-token block.
  EXPECT_DOUBLE_EQ(manager.Occupancy(), 0.25);
  ASSERT_TRUE(manager.AppendToken(1));
  EXPECT_DOUBLE_EQ(manager.Occupancy(), 0.5);
}

TEST(KvBlockManagerTest, UsedBytesAndCapacity) {
  KvBlockManager manager(SmallConfig(/*blocks=*/8, /*block_tokens=*/4));
  ASSERT_TRUE(manager.AddSequence(1, 8));
  EXPECT_DOUBLE_EQ(manager.used_bytes(), 2 * 4 * 100.0);
  // 6 free blocks; sequences of 12 tokens need 3 blocks -> 2 fit.
  EXPECT_EQ(manager.CapacitySequences(12), 2);
}

// --- Admission control & rollout extensions -----------------------------------

TEST(KvBlockManagerTest, CanAdmitMatchesBlockArithmetic) {
  KvBlockManager manager(SmallConfig(/*blocks=*/4, /*block_tokens=*/4));
  EXPECT_TRUE(manager.CanAdmit(/*prompt_tokens=*/16, /*reserve_tokens=*/0));   // Exactly 4.
  EXPECT_FALSE(manager.CanAdmit(/*prompt_tokens=*/16, /*reserve_tokens=*/1));  // 5th block.
  ASSERT_TRUE(manager.AddSequence(1, 8));  // 2 blocks used.
  EXPECT_TRUE(manager.CanAdmit(5, 3));     // ceil(8/4) = 2 <= 2 free.
  EXPECT_FALSE(manager.CanAdmit(9, 0));    // 3 blocks > 2 free.
  // Probing must not allocate anything.
  EXPECT_EQ(manager.used_blocks(), 2);
  EXPECT_EQ(manager.num_sequences(), 1);
}

TEST(KvBlockManagerTest, FreeSequencesReleasesInBulk) {
  KvBlockManager manager(SmallConfig(/*blocks=*/8));
  ASSERT_TRUE(manager.AddSequence(1, 8));
  ASSERT_TRUE(manager.AddSequence(2, 4));
  ASSERT_TRUE(manager.AddSequence(3, 4));
  manager.FreeSequences({1, 3});
  EXPECT_FALSE(manager.HasSequence(1));
  EXPECT_TRUE(manager.HasSequence(2));
  EXPECT_FALSE(manager.HasSequence(3));
  EXPECT_EQ(manager.used_blocks(), 1);
  EXPECT_EQ(manager.free_blocks(), 7);
}

TEST(KvBlockManagerTest, HighWaterTracksPeakNotCurrentUsage) {
  KvBlockManager manager(SmallConfig(/*blocks=*/8));
  EXPECT_EQ(manager.high_water_blocks(), 0);
  ASSERT_TRUE(manager.AddSequence(1, 8));  // 2 blocks.
  ASSERT_TRUE(manager.AddSequence(2, 8));  // 4 total.
  EXPECT_EQ(manager.high_water_blocks(), 4);
  manager.FreeSequence(1);
  EXPECT_EQ(manager.used_blocks(), 2);
  EXPECT_EQ(manager.high_water_blocks(), 4);  // Monotone.
  ASSERT_TRUE(manager.AddSequence(3, 4));     // Back to 3 used: no new peak.
  EXPECT_EQ(manager.high_water_blocks(), 4);
  ASSERT_TRUE(manager.AppendToken(3));  // 5th token -> new block -> 4 used.
  ASSERT_TRUE(manager.AddSequence(4, 4));
  EXPECT_EQ(manager.high_water_blocks(), 5);
}

TEST(KvBlockManagerTest, InternalFragmentationComplementsOccupancy) {
  KvBlockManager manager(SmallConfig());
  ASSERT_TRUE(manager.AddSequence(1, 1));  // 1 of 4 slots in its block.
  EXPECT_DOUBLE_EQ(manager.InternalFragmentation(), 0.75);
  ASSERT_TRUE(manager.AppendToken(1));
  EXPECT_DOUBLE_EQ(manager.InternalFragmentation(), 0.5);
}

// The rollout scheduler's exhaustion protocol: on a failed append, free a
// victim, requeue it, and later re-admit it at its full grown context.
TEST(KvBlockManagerTest, PreemptResumeCycleRecomputesAtFullContext) {
  KvBlockManager manager(SmallConfig(/*blocks=*/4, /*block_tokens=*/2));
  ASSERT_TRUE(manager.AddSequence(1, 4));  // 2 blocks.
  ASSERT_TRUE(manager.AddSequence(2, 4));  // 4 blocks: cache is full.
  EXPECT_FALSE(manager.AppendToken(1));    // Exhausted at the boundary.
  manager.FreeSequence(2);                 // Preempt the youngest.
  ASSERT_TRUE(manager.AppendToken(1));     // Victim's block is reusable.
  EXPECT_EQ(manager.SequenceTokens(1), 5);
  manager.FreeSequence(1);                 // Seq 1 finishes.
  // Resume: seq 2 re-admits with its grown context (4 prompt + 2 generated).
  ASSERT_TRUE(manager.CanAdmit(6, 0));
  ASSERT_TRUE(manager.AddSequence(2, 6));
  EXPECT_EQ(manager.SequenceTokens(2), 6);
  EXPECT_EQ(manager.used_blocks(), 3);
  EXPECT_EQ(manager.high_water_blocks(), 4);
}

TEST(DistributedKvManagerTest, CanAdmitAndBulkFreeStayInLockstep) {
  DistributedKvManager manager(2, SmallConfig(/*blocks=*/4));
  EXPECT_TRUE(manager.CanAdmit(16, 0));
  EXPECT_FALSE(manager.CanAdmit(16, 1));
  ASSERT_TRUE(manager.AddSequence(1, 8));
  ASSERT_TRUE(manager.AddSequence(2, 4));
  EXPECT_EQ(manager.high_water_blocks(), 3);
  manager.FreeSequences({1, 2});
  EXPECT_TRUE(manager.TablesInLockstep());
  EXPECT_EQ(manager.rank(0).used_blocks(), 0);
  EXPECT_EQ(manager.rank(1).used_blocks(), 0);
  EXPECT_EQ(manager.high_water_blocks(), 3);  // Peak survives the free.
}

// --- Distributed (TP-sharded) manager -----------------------------------------

TEST(DistributedKvManagerTest, RanksStayInLockstep) {
  DistributedKvManager manager(4, SmallConfig());
  ASSERT_TRUE(manager.AddSequence(1, 6));
  ASSERT_TRUE(manager.AppendToken(1));
  ASSERT_TRUE(manager.AddSequence(2, 3));
  EXPECT_TRUE(manager.TablesInLockstep());
  manager.FreeSequence(1);
  EXPECT_TRUE(manager.TablesInLockstep());
  EXPECT_EQ(manager.rank(0).num_sequences(), 1);
  EXPECT_EQ(manager.rank(3).num_sequences(), 1);
}

TEST(DistributedKvManagerTest, AllOrNothingOnExhaustion) {
  DistributedKvManager manager(2, SmallConfig(/*blocks=*/2));
  ASSERT_TRUE(manager.AddSequence(1, 8));
  EXPECT_FALSE(manager.AppendToken(1));
  EXPECT_TRUE(manager.TablesInLockstep());
  EXPECT_EQ(manager.rank(0).SequenceTokens(1), 8);
  EXPECT_EQ(manager.rank(1).SequenceTokens(1), 8);
}

TEST(DistributedKvManagerTest, BytesShardAcrossRanks) {
  KvBlockConfig config = SmallConfig();
  config.bytes_per_token = 50.0;  // Per-rank shard of a 200 B/token cache at t_g=4.
  DistributedKvManager manager(4, config);
  ASSERT_TRUE(manager.AddSequence(1, 4));
  EXPECT_DOUBLE_EQ(manager.total_used_bytes(), 4 * 4 * 50.0);
}

// Simulated generation loop: waves emerge from capacity, nothing leaks.
TEST(DistributedKvManagerTest, WaveSchedulingDrainsEverything) {
  DistributedKvManager manager(2, SmallConfig(/*blocks=*/16, /*block_tokens=*/4));
  const int64_t prompt = 8;
  const int64_t response = 8;
  int64_t next = 0;
  int64_t completed = 0;
  std::vector<int64_t> active;
  const int64_t total_sequences = 20;
  int waves = 0;
  const int64_t blocks_per_full_sequence = (prompt + response + 3) / 4;
  while (completed < total_sequences) {
    // Admit only sequences whose full length is guaranteed to fit, so the
    // decode loop never stalls mid-sequence (vLLM-style admission control).
    while (next < total_sequences &&
           (static_cast<int64_t>(active.size()) + 1) * blocks_per_full_sequence <=
               manager.rank(0).config().num_blocks &&
           manager.AddSequence(next, prompt)) {
      active.push_back(next);
      next += 1;
    }
    ASSERT_FALSE(active.empty()) << "deadlock: nothing admitted";
    waves += 1;
    // Decode all active sequences to completion.
    for (int64_t id : active) {
      for (int64_t step = 0; step < response; ++step) {
        ASSERT_TRUE(manager.AppendToken(id));
      }
      manager.FreeSequence(id);
      completed += 1;
    }
    active.clear();
  }
  EXPECT_GT(waves, 1);  // Capacity forced batching into waves.
  EXPECT_EQ(manager.rank(0).used_blocks(), 0);
  EXPECT_TRUE(manager.TablesInLockstep());
}

// --- Prefix-sharing cache (docs/KVCACHE.md) -----------------------------------
// Suites named KvCache* run under check.sh's TSan and schedule-fuzz ctest
// subsets in addition to the plain suite.

KvBlockConfig PrefixConfig(int64_t blocks, int64_t block_tokens = 4) {
  KvBlockConfig config = SmallConfig(blocks, block_tokens);
  config.enable_prefix_cache = true;
  return config;
}

TEST(KvCachePrefixTest, HashChainingSeparatesDivergentPrefixes) {
  const std::vector<uint64_t> a = PromptBlockHashes({1, 2, 3, 4, 5, 6, 7, 8}, 4);
  const std::vector<uint64_t> b = PromptBlockHashes({1, 2, 3, 4, 9, 9, 9, 9}, 4);
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(a[0], b[0]);  // Identical first block.
  EXPECT_NE(a[1], b[1]);  // Chained: divergence poisons every later hash.
  EXPECT_NE(a[0], 0u);
  EXPECT_NE(a[1], 0u);  // Zero is the unhashed sentinel, never produced.
  // Partial tail blocks are never hashed.
  EXPECT_EQ(PromptBlockHashes({1, 2, 3, 4, 5}, 4).size(), 1u);
}

TEST(KvCachePrefixTest, GroupHashNamespacesAreDisjoint) {
  // Count-based identity for the sim plane: equal groups hash equal;
  // distinct groups — including the negative per-sequence namespace the
  // timing simulator uses for unique prompts — never collide.
  EXPECT_EQ(GroupBlockHashes(3, 4), GroupBlockHashes(3, 4));
  EXPECT_NE(GroupBlockHashes(3, 4), GroupBlockHashes(4, 4));
  EXPECT_NE(GroupBlockHashes(-1, 4), GroupBlockHashes(0, 4));
  EXPECT_NE(GroupBlockHashes(-1, 4), GroupBlockHashes(-2, 4));
}

TEST(KvCachePrefixTest, IdenticalPromptsShareBlocksPhysically) {
  KvBlockManager manager(PrefixConfig(/*blocks=*/8));
  const std::vector<uint64_t> hashes = PromptBlockHashes({1, 2, 3, 4, 5, 6, 7, 8}, 4);
  ASSERT_TRUE(manager.AddSequenceShared(1, 8, hashes));
  EXPECT_EQ(manager.used_blocks(), 2);
  ASSERT_TRUE(manager.AddSequenceShared(2, 8, hashes));
  EXPECT_EQ(manager.used_blocks(), 2);  // Shared, not re-allocated.
  EXPECT_EQ(manager.shared_blocks(), 2);
  EXPECT_EQ(manager.BlockTable(1), manager.BlockTable(2));
  EXPECT_EQ(manager.prefix_hit_tokens_total(), 8);
  // Physical occupancy counts a shared block's capacity and fill once.
  EXPECT_DOUBLE_EQ(manager.Occupancy(), 1.0);
  EXPECT_DOUBLE_EQ(manager.used_bytes(), 2 * 4 * 100.0);
  EXPECT_TRUE(manager.RefcountsConsistent());
}

TEST(KvCachePrefixTest, RetentionServesLaterIdenticalPrompt) {
  KvBlockManager manager(PrefixConfig(/*blocks=*/4));
  const std::vector<uint64_t> hashes = PromptBlockHashes({1, 2, 3, 4, 5, 6, 7, 8}, 4);
  ASSERT_TRUE(manager.AddSequenceShared(1, 8, hashes));
  manager.FreeSequence(1);
  // Unreferenced but retained: evictable, still indexed, still probe-able.
  EXPECT_EQ(manager.used_blocks(), 0);
  EXPECT_EQ(manager.cached_blocks(), 2);
  EXPECT_EQ(manager.free_blocks(), 2);
  EXPECT_EQ(manager.PrefixHitTokens(hashes), 8);
  EXPECT_EQ(manager.PrefixHitBlocksReferenced(hashes), 0);  // No live refs.
  // A later identical prompt revives both blocks instead of allocating.
  ASSERT_TRUE(manager.AddSequenceShared(2, 8, hashes));
  EXPECT_EQ(manager.used_blocks(), 2);
  EXPECT_EQ(manager.cached_blocks(), 0);
  EXPECT_EQ(manager.free_blocks(), 2);
  EXPECT_EQ(manager.prefix_hit_tokens_total(), 8);  // The revival's hits.
  EXPECT_EQ(manager.PrefixHitBlocksReferenced(hashes), 2);
  EXPECT_TRUE(manager.RefcountsConsistent());
}

TEST(KvCachePrefixTest, LruEvictionReclaimsColdestAndPrunesIndex) {
  KvBlockManager manager(PrefixConfig(/*blocks=*/2));
  const std::vector<uint64_t> cold = PromptBlockHashes({1, 2, 3, 4}, 4);
  const std::vector<uint64_t> warm = PromptBlockHashes({5, 6, 7, 8}, 4);
  ASSERT_TRUE(manager.AddSequenceShared(1, 4, cold));
  manager.FreeSequence(1);
  ASSERT_TRUE(manager.AddSequenceShared(2, 4, warm));
  manager.FreeSequence(2);
  EXPECT_EQ(manager.cached_blocks(), 2);
  // A private allocation runs the pool dry: the LRU (cold) block is
  // evicted and its index entry pruned; the warm block survives.
  ASSERT_TRUE(manager.AddSequence(3, 4));
  EXPECT_EQ(manager.evictions_total(), 1);
  EXPECT_EQ(manager.PrefixHitTokens(cold), 0);
  EXPECT_EQ(manager.PrefixHitTokens(warm), 4);
  EXPECT_TRUE(manager.RefcountsConsistent());
}

TEST(KvCachePrefixTest, EvictableHitsAreNotSpareCapacity) {
  // Regression: admission used to count evictable hit blocks as available
  // while also planning to re-reference them, so the fresh-block loop ran
  // the pool dry mid-admission (fatal) instead of returning false.
  KvBlockManager manager(PrefixConfig(/*blocks=*/4));
  const std::vector<int64_t> prompt = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  const std::vector<uint64_t> hashes = PromptBlockHashes(prompt, 4);
  ASSERT_TRUE(manager.AddSequenceShared(1, 16, hashes));
  manager.FreeSequence(1);
  ASSERT_EQ(manager.free_blocks(), 0);
  ASSERT_EQ(manager.cached_blocks(), 4);
  // All four hits are evictable, so re-refing them leaves zero blocks for
  // the one fresh block 17..20 needs: the probe and the apply path must
  // both refuse, leaving the cache untouched.
  EXPECT_FALSE(manager.CanAdmitShared(/*resident_tokens=*/16, /*reserve_tokens=*/4, hashes));
  EXPECT_FALSE(manager.AddSequenceShared(2, 20, hashes));
  EXPECT_EQ(manager.used_blocks(), 0);
  EXPECT_EQ(manager.cached_blocks(), 4);
  // Without the extra fresh block the revival fits exactly.
  EXPECT_TRUE(manager.CanAdmitShared(/*resident_tokens=*/16, /*reserve_tokens=*/0, hashes));
  ASSERT_TRUE(manager.AddSequenceShared(3, 16, hashes));
  EXPECT_EQ(manager.used_blocks(), 4);
  EXPECT_TRUE(manager.RefcountsConsistent());
}

TEST(KvCachePrefixTest, ReferencedHitsDoNotConsumeCapacity) {
  // Contrast with the evictable case: hits on blocks live sequences still
  // reference are genuinely free, so the same admission fits.
  KvBlockManager manager(PrefixConfig(/*blocks=*/5));
  const std::vector<int64_t> prompt = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  const std::vector<uint64_t> hashes = PromptBlockHashes(prompt, 4);
  ASSERT_TRUE(manager.AddSequenceShared(1, 16, hashes));  // 4 blocks, live.
  EXPECT_EQ(manager.PrefixHitBlocksReferenced(hashes), 4);
  EXPECT_TRUE(manager.CanAdmitShared(/*resident_tokens=*/16, /*reserve_tokens=*/4, hashes));
  ASSERT_TRUE(manager.AddSequenceShared(2, 20, hashes));
  EXPECT_EQ(manager.used_blocks(), 5);
  EXPECT_EQ(manager.shared_blocks(), 4);
  EXPECT_TRUE(manager.RefcountsConsistent());
}

TEST(KvCacheCowTest, ForkSharesEverythingAndSplitsOnFirstDivergentWrite) {
  KvBlockManager manager(PrefixConfig(/*blocks=*/8));
  ASSERT_TRUE(manager.AddSequence(1, 6));  // 2 blocks; tail holds 2 of 4.
  manager.Fork(1, 2);
  EXPECT_EQ(manager.used_blocks(), 2);  // The fork allocated nothing.
  EXPECT_EQ(manager.shared_blocks(), 2);
  EXPECT_EQ(manager.BlockTable(1), manager.BlockTable(2));
  EXPECT_EQ(manager.SequenceTokens(2), 6);
  // The child's first append writes into the shared partial tail: COW.
  ASSERT_TRUE(manager.AppendToken(2));
  EXPECT_EQ(manager.cow_splits_total(), 1);
  EXPECT_EQ(manager.used_blocks(), 3);
  EXPECT_EQ(manager.BlockTable(1)[0], manager.BlockTable(2)[0]);  // Prefix intact.
  EXPECT_NE(manager.BlockTable(1)[1], manager.BlockTable(2)[1]);  // Tail split.
  EXPECT_EQ(manager.SequenceTokens(1), 6);  // Reader undisturbed.
  EXPECT_EQ(manager.SequenceTokens(2), 7);
  // The parent's tail is exclusively owned again: no further split.
  ASSERT_TRUE(manager.AppendToken(1));
  EXPECT_EQ(manager.cow_splits_total(), 1);
  EXPECT_EQ(manager.used_blocks(), 3);
  EXPECT_EQ(manager.shared_blocks(), 1);
  EXPECT_TRUE(manager.RefcountsConsistent());
  manager.FreeSequence(1);
  manager.FreeSequence(2);
  EXPECT_EQ(manager.used_blocks(), 0);
  EXPECT_TRUE(manager.RefcountsConsistent());
}

TEST(KvCacheCowTest, CowSplitFailsCleanlyWhenPoolIsDry) {
  KvBlockManager manager(PrefixConfig(/*blocks=*/2, /*block_tokens=*/4));
  ASSERT_TRUE(manager.AddSequence(1, 6));  // Both blocks taken.
  manager.Fork(1, 2);
  // The split needs a block and none is free or evictable.
  EXPECT_FALSE(manager.CanAppendToken(2));
  EXPECT_FALSE(manager.AppendToken(2));
  EXPECT_EQ(manager.SequenceTokens(2), 6);  // Unchanged on failure.
  EXPECT_EQ(manager.cow_splits_total(), 0);
  EXPECT_TRUE(manager.RefcountsConsistent());
}

TEST(KvCacheLeakTest, SharedLifecyclesReturnEveryBlock) {
  // Interleaved shared admissions, forks, divergent appends, and frees in
  // varying orders: physical usage must return to zero and the refcount
  // audit must hold at every quiescent point.
  KvBlockManager manager(PrefixConfig(/*blocks=*/16, /*block_tokens=*/2));
  const std::vector<uint64_t> hashes = PromptBlockHashes({1, 2, 3, 4, 5, 6}, 2);
  ASSERT_TRUE(manager.AddSequenceShared(1, 6, hashes));
  ASSERT_TRUE(manager.AddSequenceShared(2, 6, hashes));
  manager.Fork(2, 3);
  ASSERT_TRUE(manager.AppendToken(1));  // New block (boundary).
  ASSERT_TRUE(manager.AppendToken(3));  // New block: 3 diverges from 2.
  ASSERT_TRUE(manager.RefcountsConsistent());
  manager.FreeSequence(2);  // Middle owner first: shared blocks survive.
  ASSERT_TRUE(manager.RefcountsConsistent());
  EXPECT_EQ(manager.SequenceTokens(1), 7);
  EXPECT_EQ(manager.SequenceTokens(3), 7);
  manager.FreeSequences({1, 3});
  EXPECT_EQ(manager.used_blocks(), 0);
  EXPECT_GT(manager.cached_blocks(), 0);  // Hashed blocks retained.
  EXPECT_TRUE(manager.RefcountsConsistent());
}

TEST(KvCacheLeakTest, RandomizedOpSoakHoldsInvariants) {
  // Property soak across seeds: random admits (shared and private), forks,
  // appends, and frees against a tiny pool. After every operation the
  // refcount/partition audit must hold; after the final drain nothing may
  // remain referenced.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    KvBlockManager manager(PrefixConfig(/*blocks=*/6, /*block_tokens=*/2));
    uint64_t state = seed * 2654435761ULL;
    const auto next = [&state]() {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      return state;
    };
    std::vector<int64_t> live;
    int64_t next_id = 0;
    for (int op = 0; op < 200; ++op) {
      switch (next() % 4) {
        case 0: {  // Shared admit of one of two recurring prompts.
          const bool first = next() % 2 == 0;
          const std::vector<uint64_t> hashes =
              PromptBlockHashes(first ? std::vector<int64_t>{1, 2, 3, 4}
                                      : std::vector<int64_t>{9, 8, 7, 6},
                                2);
          if (manager.AddSequenceShared(next_id, 4, hashes)) {
            live.push_back(next_id++);
          }
          break;
        }
        case 1: {  // Fork a random live sequence.
          if (!live.empty()) {
            manager.Fork(live[next() % live.size()], next_id);
            live.push_back(next_id++);
          }
          break;
        }
        case 2: {  // Append (may COW-split or fail on exhaustion).
          if (!live.empty()) {
            manager.AppendToken(live[next() % live.size()]);
          }
          break;
        }
        default: {  // Free a random live sequence.
          if (!live.empty()) {
            const size_t victim = next() % live.size();
            manager.FreeSequence(live[victim]);
            live.erase(live.begin() + static_cast<int64_t>(victim));
          }
          break;
        }
      }
      ASSERT_TRUE(manager.RefcountsConsistent()) << "seed " << seed << " op " << op;
    }
    for (int64_t id : live) {
      manager.FreeSequence(id);
    }
    EXPECT_EQ(manager.used_blocks(), 0) << "seed " << seed;
    EXPECT_TRUE(manager.RefcountsConsistent()) << "seed " << seed;
  }
}

TEST(KvCacheDistributedTest, SharedAdmissionAndForkStayInLockstep) {
  DistributedKvManager manager(2, PrefixConfig(/*blocks=*/8));
  const std::vector<uint64_t> hashes = PromptBlockHashes({1, 2, 3, 4, 5, 6, 7, 8}, 4);
  ASSERT_TRUE(manager.AddSequenceShared(1, 8, hashes));
  ASSERT_TRUE(manager.AddSequenceShared(2, 8, hashes));
  manager.Fork(2, 3);
  ASSERT_TRUE(manager.AppendToken(3));  // Boundary append, all ranks.
  EXPECT_TRUE(manager.TablesInLockstep());
  EXPECT_EQ(manager.rank(0).shared_blocks(), manager.rank(1).shared_blocks());
  manager.FreeSequences({1, 2, 3});
  EXPECT_TRUE(manager.TablesInLockstep());
  EXPECT_EQ(manager.rank(0).used_blocks(), 0);
  EXPECT_EQ(manager.rank(1).used_blocks(), 0);
  EXPECT_EQ(manager.rank(0).cached_blocks(), manager.rank(1).cached_blocks());
  EXPECT_TRUE(manager.rank(0).RefcountsConsistent());
  EXPECT_TRUE(manager.rank(1).RefcountsConsistent());
}

}  // namespace
}  // namespace hybridflow
