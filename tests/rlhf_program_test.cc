#include <gtest/gtest.h>

#include "src/baselines/system_builder.h"

namespace hybridflow {
namespace {

SystemBuildConfig SmallSystem(RlhfAlgorithm algorithm) {
  SystemBuildConfig config;
  config.system = RlhfSystem::kHybridFlow;
  config.algorithm = algorithm;
  config.num_gpus = 8;
  config.actor_model = ModelSpec::Llama7B();
  config.critic_model = ModelSpec::Llama7B();
  config.real_compute = true;
  config.real_batch = 32;
  config.seed = 21;
  config.workload.global_batch = 128;
  config.workload.prompt_len = 256;
  config.workload.response_len = 256;
  return config;
}

class AlgorithmSweep : public ::testing::TestWithParam<RlhfAlgorithm> {};

TEST_P(AlgorithmSweep, RunsEndToEndWithRealNumerics) {
  RlhfSystemInstance system = BuildSystem(SmallSystem(GetParam()));
  ASSERT_TRUE(system.feasible);
  IterationMetrics metrics = system.RunIteration();
  EXPECT_GT(metrics.iteration_seconds, 0.0);
  EXPECT_GT(metrics.throughput_tokens_per_sec, 0.0);
  // Real plane produced responses and rewards.
  EXPECT_NE(metrics.mean_reward, 0.0);
  // All three stage categories were scheduled.
  EXPECT_GT(metrics.busy_by_category.at("generate"), 0.0);
  EXPECT_GT(metrics.busy_by_category.at("infer"), 0.0);
  EXPECT_GT(metrics.busy_by_category.at("train"), 0.0);
}

TEST_P(AlgorithmSweep, IterationTimeIsDeterministic) {
  RlhfSystemInstance system = BuildSystem(SmallSystem(GetParam()));
  ASSERT_TRUE(system.feasible);
  IterationMetrics first = system.RunIteration();
  IterationMetrics second = system.RunIteration();
  EXPECT_NEAR(first.iteration_seconds, second.iteration_seconds,
              1e-9 * first.iteration_seconds);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, AlgorithmSweep,
                         ::testing::Values(RlhfAlgorithm::kPpo, RlhfAlgorithm::kRemax,
                                           RlhfAlgorithm::kSafeRlhf, RlhfAlgorithm::kGrpo),
                         [](const ::testing::TestParamInfo<RlhfAlgorithm>& info) {
                           switch (info.param) {
                             case RlhfAlgorithm::kPpo:
                               return "Ppo";
                             case RlhfAlgorithm::kRemax:
                               return "Remax";
                             case RlhfAlgorithm::kSafeRlhf:
                               return "SafeRlhf";
                             case RlhfAlgorithm::kGrpo:
                               return "Grpo";
                           }
                           return "Unknown";
                         });

TEST(RlhfLearningTest, PpoReducesToxicityAndImprovesReward) {
  SystemBuildConfig config = SmallSystem(RlhfAlgorithm::kPpo);
  config.real_batch = 64;
  RlhfSystemInstance system = BuildSystem(config);
  ASSERT_TRUE(system.feasible);
  double first_reward = 0.0;
  double first_toxicity = 0.0;
  double last_reward = 0.0;
  double last_toxicity = 0.0;
  const int iterations = 25;
  for (int i = 0; i < iterations; ++i) {
    IterationMetrics metrics = system.RunIteration();
    if (i < 3) {
      first_reward += metrics.mean_reward / 3.0;
      first_toxicity += metrics.toxicity_rate / 3.0;
    }
    if (i >= iterations - 3) {
      last_reward += metrics.mean_reward / 3.0;
      last_toxicity += metrics.toxicity_rate / 3.0;
    }
  }
  EXPECT_GT(last_reward, first_reward) << "PPO failed to improve the reward";
  EXPECT_LE(last_toxicity, first_toxicity + 1e-9)
      << "PPO failed to suppress the toxic token";
}

TEST(RlhfLearningTest, RemaxLearnsWithoutCritic) {
  SystemBuildConfig config = SmallSystem(RlhfAlgorithm::kRemax);
  config.real_batch = 64;
  RlhfSystemInstance system = BuildSystem(config);
  ASSERT_TRUE(system.feasible);
  EXPECT_EQ(system.critic, nullptr);
  double first = 0.0;
  double last = 0.0;
  for (int i = 0; i < 20; ++i) {
    IterationMetrics metrics = system.RunIteration();
    if (i < 3) {
      first += metrics.mean_reward / 3.0;
    }
    if (i >= 17) {
      last += metrics.mean_reward / 3.0;
    }
  }
  EXPECT_GT(last, first);
}

TEST(RlhfProgramTest, SafeRlhfUsesCostModel) {
  RlhfSystemInstance system = BuildSystem(SmallSystem(RlhfAlgorithm::kSafeRlhf));
  ASSERT_TRUE(system.feasible);
  ASSERT_NE(system.cost, nullptr);
  system.RunIteration();
  // Cost model scheduled at least one op.
  bool saw_cost_op = false;
  for (const TraceSpan& span : system.controller->cluster().trace()) {
    if (span.name.rfind("cost.", 0) == 0) {
      saw_cost_op = true;
    }
  }
  EXPECT_TRUE(saw_cost_op);
}

TEST(RlhfProgramTest, RemaxSchedulesTwoGenerationPasses) {
  RlhfSystemInstance system = BuildSystem(SmallSystem(RlhfAlgorithm::kRemax));
  ASSERT_TRUE(system.feasible);
  system.RunIteration();
  int generate_spans = 0;
  for (const TraceSpan& span : system.controller->cluster().trace()) {
    if (span.category == "generate") {
      generate_spans += 1;
    }
  }
  EXPECT_EQ(generate_spans, 2);
}

TEST(RlhfProgramTest, PpoSchedulesUpdatesPerMinibatch) {
  SystemBuildConfig config = SmallSystem(RlhfAlgorithm::kPpo);
  config.workload.updates_per_iteration = 4;
  RlhfSystemInstance system = BuildSystem(config);
  ASSERT_TRUE(system.feasible);
  system.RunIteration();
  int actor_updates = 0;
  int critic_updates = 0;
  for (const TraceSpan& span : system.controller->cluster().trace()) {
    if (span.name == "actor.update_actor") {
      actor_updates += 1;
    }
    if (span.name == "critic.update_critic") {
      critic_updates += 1;
    }
  }
  EXPECT_EQ(actor_updates, 4);
  EXPECT_EQ(critic_updates, 4);
}

TEST(RlhfProgramTest, GrpoGroupsShareAPrompt) {
  SystemBuildConfig config = SmallSystem(RlhfAlgorithm::kGrpo);
  RlhfSystemInstance system = BuildSystem(config);
  ASSERT_TRUE(system.feasible);
  system.RunIteration();
  // Algorithm name resolution sanity.
  EXPECT_STREQ(RlhfAlgorithmName(RlhfAlgorithm::kGrpo), "GRPO");
}

TEST(RlhfProgramTest, TransformerActorsLearnToo) {
  SystemBuildConfig config = SmallSystem(RlhfAlgorithm::kPpo);
  config.real_arch = PolicyArch::kTransformer;
  config.real_batch = 32;
  RlhfSystemInstance system = BuildSystem(config);
  ASSERT_TRUE(system.feasible);
  double first = 0.0;
  double last = 0.0;
  for (int i = 0; i < 12; ++i) {
    IterationMetrics metrics = system.RunIteration();
    if (i < 2) {
      first += metrics.mean_reward / 2.0;
    }
    if (i >= 10) {
      last += metrics.mean_reward / 2.0;
    }
  }
  EXPECT_GT(last, first) << "transformer-backed PPO failed to improve reward";
}

TEST(RlhfProgramTest, RecomputeLogProbsAddsAnActorInferenceOp) {
  SystemBuildConfig config = SmallSystem(RlhfAlgorithm::kPpo);
  RlhfSystemInstance system = BuildSystem(config);
  ASSERT_TRUE(system.feasible);
  RlhfProgramConfig program_config;
  program_config.algorithm = RlhfAlgorithm::kPpo;
  program_config.workload = config.workload;
  program_config.real_batch = 16;
  program_config.recompute_log_probs = true;
  RlhfModels models;
  models.actor = system.actor.get();
  models.critic = system.critic.get();
  models.reference = system.reference.get();
  models.reward = system.reward.get();
  RlhfProgram program(program_config, models, system.controller.get(), system.dataset.get());
  program.RunIteration();
  int log_prob_ops = 0;
  for (const TraceSpan& span : system.controller->cluster().trace()) {
    if (span.name == "actor.compute_log_prob") {
      log_prob_ops += 1;
    }
  }
  EXPECT_EQ(log_prob_ops, 1);
}

TEST(RlhfProgramTest, TimingOnlyModeRunsWithoutData) {
  SystemBuildConfig config = SmallSystem(RlhfAlgorithm::kPpo);
  config.real_compute = false;
  RlhfSystemInstance system = BuildSystem(config);
  ASSERT_TRUE(system.feasible);
  IterationMetrics metrics = system.RunIteration();
  EXPECT_GT(metrics.iteration_seconds, 0.0);
  EXPECT_DOUBLE_EQ(metrics.mean_reward, 0.0);
}

}  // namespace
}  // namespace hybridflow
