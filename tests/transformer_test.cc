#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "src/nn/adam.h"
#include "src/nn/policy_net.h"

namespace hybridflow {
namespace {

PolicyNetConfig TransformerConfig(bool scalar = false) {
  PolicyNetConfig config;
  config.arch = PolicyArch::kTransformer;
  config.vocab_size = 8;
  config.context_window = 4;
  config.embed_dim = 12;
  config.hidden_dim = 24;
  config.num_layers = 2;
  config.scalar_head = scalar;
  return config;
}

// --- New tensor ops -----------------------------------------------------------

TEST(TransposeTest, ForwardAndGrad) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6}, true);
  Tensor t = Transpose(a);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.dim(1), 2);
  EXPECT_FLOAT_EQ(t.at(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(t.at(2, 0), 3.0f);
  Tensor weighted = Sum(Mul(t, Tensor::FromData({3, 2}, {1, 0, 0, 0, 0, 2})));
  weighted.Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 1.0f);  // a(0,0) <- t(0,0) weight 1.
  EXPECT_FLOAT_EQ(a.grad()[5], 2.0f);  // a(1,2) <- t(2,1) weight 2.
}

TEST(TransposeTest, DoubleTransposeIsIdentity) {
  Rng rng(1);
  Tensor a = Tensor::Randn({3, 5}, rng, 1.0f, false);
  Tensor round_trip = Transpose(Transpose(a));
  for (size_t i = 0; i < a.data().size(); ++i) {
    EXPECT_FLOAT_EQ(round_trip.data()[i], a.data()[i]);
  }
}

TEST(SliceRowsTest, SelectsAndRoutesGrad) {
  Tensor a = Tensor::FromData({3, 2}, {1, 2, 3, 4, 5, 6}, true);
  Tensor middle = SliceRows(a, 1, 2);
  EXPECT_EQ(middle.dim(0), 1);
  EXPECT_FLOAT_EQ(middle.at(0, 1), 4.0f);
  Sum(middle).Backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(a.grad()[2], 1.0f);
  EXPECT_FLOAT_EQ(a.grad()[3], 1.0f);
  EXPECT_FLOAT_EQ(a.grad()[4], 0.0f);
}

TEST(LayerNormTest, NormalizesRows) {
  Tensor a = Tensor::FromData({2, 4}, {1, 2, 3, 4, -2, 0, 2, 4});
  Tensor gamma = Tensor::Full({4}, 1.0f);
  Tensor beta = Tensor::Zeros({4});
  Tensor normed = LayerNorm(a, gamma, beta);
  for (int64_t i = 0; i < 2; ++i) {
    float mean = 0.0f;
    float var = 0.0f;
    for (int64_t j = 0; j < 4; ++j) {
      mean += normed.at(i, j);
    }
    mean /= 4.0f;
    for (int64_t j = 0; j < 4; ++j) {
      var += (normed.at(i, j) - mean) * (normed.at(i, j) - mean);
    }
    EXPECT_NEAR(mean, 0.0f, 1e-5);
    EXPECT_NEAR(var / 4.0f, 1.0f, 1e-3);
  }
}

TEST(LayerNormTest, AffineParametersApply) {
  Tensor a = Tensor::FromData({1, 2}, {-1.0f, 1.0f});
  Tensor gamma = Tensor::FromData({2}, {2.0f, 2.0f});
  Tensor beta = Tensor::FromData({2}, {5.0f, 5.0f});
  Tensor normed = LayerNorm(a, gamma, beta);
  EXPECT_NEAR(normed.at(0, 0), 5.0f - 2.0f, 1e-4);
  EXPECT_NEAR(normed.at(0, 1), 5.0f + 2.0f, 1e-4);
}

TEST(LayerNormTest, GradientCheckAllInputs) {
  Rng rng(2);
  Tensor gamma = Tensor::Randn({4}, rng, 0.5f);
  Tensor beta = Tensor::Randn({4}, rng, 0.5f);
  Tensor x = Tensor::Randn({2, 4}, rng, 1.0f);
  Tensor weights = Tensor::Randn({2, 4}, rng, 1.0f, /*requires_grad=*/false);

  auto loss_fn = [&]() { return Sum(Mul(LayerNorm(x, gamma, beta), weights)); };
  Tensor loss = loss_fn();
  loss.Backward();
  std::vector<float> dx = x.grad();
  std::vector<float> dgamma = gamma.grad();
  const float eps = 1e-2f;
  for (size_t i = 0; i < x.data().size(); ++i) {
    const float saved = x.data()[i];
    x.data()[i] = saved + eps;
    const float plus = loss_fn().item();
    x.data()[i] = saved - eps;
    const float minus = loss_fn().item();
    x.data()[i] = saved;
    EXPECT_NEAR(dx[i], (plus - minus) / (2 * eps), 5e-2) << "x[" << i << "]";
  }
  for (size_t i = 0; i < gamma.data().size(); ++i) {
    const float saved = gamma.data()[i];
    gamma.data()[i] = saved + eps;
    const float plus = loss_fn().item();
    gamma.data()[i] = saved - eps;
    const float minus = loss_fn().item();
    gamma.data()[i] = saved;
    EXPECT_NEAR(dgamma[i], (plus - minus) / (2 * eps), 5e-2) << "gamma[" << i << "]";
  }
}

// --- Transformer policy ---------------------------------------------------------

TEST(TransformerPolicyTest, ForwardShapes) {
  Rng rng(3);
  PolicyNet net(TransformerConfig(), rng);
  Tensor logits = net.Forward({{0, 1, 2, 3}, {4, 5, 6, 7}});
  EXPECT_EQ(logits.dim(0), 2);
  EXPECT_EQ(logits.dim(1), 8);
  PolicyNet scalar(TransformerConfig(/*scalar=*/true), rng);
  Tensor values = scalar.Forward({{0, 1, 2, 3}});
  EXPECT_EQ(values.ndim(), 1);
  EXPECT_EQ(values.dim(0), 1);
}

TEST(TransformerPolicyTest, AttendsToEarlyTokens) {
  // Unlike a bag of positions, attention lets the output depend on tokens
  // anywhere in the window; check outputs differ when only the first token
  // changes.
  Rng rng(4);
  PolicyNet net(TransformerConfig(), rng);
  Tensor a = net.Forward({{1, 2, 3, 4}});
  Tensor b = net.Forward({{5, 2, 3, 4}});
  double diff = 0.0;
  for (int64_t j = 0; j < a.dim(1); ++j) {
    diff += std::abs(a.at(0, j) - b.at(0, j));
  }
  EXPECT_GT(diff, 1e-4);
}

TEST(TransformerPolicyTest, ParameterCountMatchesArchitecture) {
  Rng rng(5);
  PolicyNet net(TransformerConfig(), rng);
  // embedding + pos + 2 blocks x 12 tensors + final ln (2) + head (2).
  EXPECT_EQ(net.Parameters().size(), 1u + 1u + 2u * 12u + 2u + 2u);
  for (const Tensor& param : net.Parameters()) {
    EXPECT_TRUE(param.requires_grad());
  }
}

TEST(TransformerPolicyTest, CopyFromReproducesOutputs) {
  Rng rng_a(6);
  Rng rng_b(7);
  PolicyNet a(TransformerConfig(), rng_a);
  PolicyNet b(TransformerConfig(), rng_b);
  b.CopyFrom(a);
  Tensor la = a.Forward({{1, 2, 3, 4}});
  Tensor lb = b.Forward({{1, 2, 3, 4}});
  for (int64_t j = 0; j < la.dim(1); ++j) {
    EXPECT_FLOAT_EQ(la.at(0, j), lb.at(0, j));
  }
}

TEST(TransformerPolicyTest, LearnsSuccessorFunction) {
  Rng rng(8);
  PolicyNetConfig config = TransformerConfig();
  PolicyNet net(config, rng);
  AdamConfig adam_config;
  adam_config.lr = 0.01f;
  Adam adam(net.Parameters(), adam_config);
  Rng data_rng(9);
  for (int step = 0; step < 250; ++step) {
    std::vector<std::vector<int64_t>> contexts;
    std::vector<int64_t> targets;
    for (int i = 0; i < 32; ++i) {
      const int64_t last = data_rng.UniformInt(0, config.vocab_size - 1);
      contexts.push_back({data_rng.UniformInt(0, config.vocab_size - 1),
                          data_rng.UniformInt(0, config.vocab_size - 1),
                          data_rng.UniformInt(0, config.vocab_size - 1), last});
      targets.push_back((last + 1) % config.vocab_size);
    }
    Tensor loss = Neg(Mean(net.LogProb(contexts, targets)));
    loss.Backward();
    adam.Step();
  }
  int correct = 0;
  for (int64_t last = 0; last < config.vocab_size; ++last) {
    if (net.Greedy({{0, 0, 0, last}})[0] == (last + 1) % config.vocab_size) {
      correct += 1;
    }
  }
  EXPECT_GE(correct, 6);
}

TEST(TransformerPolicyTest, GradCheckThroughWholeNetwork) {
  // End-to-end gradient check of one embedding row through attention,
  // layernorm, MLP, residuals, and the head.
  Rng rng(10);
  PolicyNetConfig config = TransformerConfig();
  config.num_layers = 1;
  PolicyNet net(config, rng);
  std::vector<std::vector<int64_t>> contexts = {{1, 2, 3, 4}};
  std::vector<int64_t> targets = {5};
  Tensor loss = Neg(Mean(net.LogProb(contexts, targets)));
  loss.Backward();
  Tensor embedding = net.Parameters()[0];
  const std::vector<float> grads = embedding.grad();
  const float eps = 1e-2f;
  // Token 2's embedding row (present in the context) must have gradients.
  const size_t row = 2 * static_cast<size_t>(config.embed_dim);
  double grad_mass = 0.0;
  for (int64_t j = 0; j < config.embed_dim; ++j) {
    grad_mass += std::abs(grads[row + static_cast<size_t>(j)]);
  }
  EXPECT_GT(grad_mass, 1e-6);
  // Numeric check of the first two coordinates.
  for (size_t j = row; j < row + 2; ++j) {
    const float saved = embedding.data()[j];
    embedding.data()[j] = saved + eps;
    const float plus = Neg(Mean(net.LogProb(contexts, targets))).item();
    embedding.data()[j] = saved - eps;
    const float minus = Neg(Mean(net.LogProb(contexts, targets))).item();
    embedding.data()[j] = saved;
    EXPECT_NEAR(grads[j], (plus - minus) / (2 * eps), 3e-2);
  }
}

}  // namespace
}  // namespace hybridflow
