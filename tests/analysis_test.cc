#include <gtest/gtest.h>

#include <vector>

#include "src/analysis/timeline_checker.h"
#include "src/baselines/system_builder.h"
#include "src/common/rng.h"
#include "src/sim/des_executor.h"

namespace hybridflow {
namespace {

SystemBuildConfig SmallSystem(RlhfAlgorithm algorithm) {
  SystemBuildConfig config;
  config.system = RlhfSystem::kHybridFlow;
  config.algorithm = algorithm;
  config.num_gpus = 8;
  config.real_compute = true;
  config.real_batch = 16;
  config.seed = 33;
  config.workload.global_batch = 128;
  config.workload.prompt_len = 256;
  config.workload.response_len = 256;
  return config;
}

TimelineChecker CheckerFor(const RlhfSystemInstance& system) {
  TimelineChecker checker(system.controller->spec());
  for (const auto& pool : system.controller->pools()) {
    checker.RegisterGroup(pool->name(), pool->devices());
  }
  return checker;
}

class AlgorithmTimelineSweep : public ::testing::TestWithParam<RlhfAlgorithm> {};

// The acceptance gate: executed RLHF timelines carry zero invariant
// violations — device exclusivity, monotone time, start >= ready, greedy
// scheduling consistency, and pool coverage of every grouped op.
TEST_P(AlgorithmTimelineSweep, ExecutedTimelineHasNoViolations) {
  RlhfSystemInstance system = BuildSystem(SmallSystem(GetParam()));
  ASSERT_TRUE(system.feasible);
  for (int i = 0; i < 2; ++i) {
    system.RunIteration();
  }
  const ClusterState& cluster = system.controller->cluster();
  ASSERT_FALSE(cluster.trace().empty());
  TimelineChecker checker = CheckerFor(system);
  std::vector<TimelineViolation> violations = checker.Check(cluster);
  EXPECT_TRUE(violations.empty()) << FormatViolations(violations);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, AlgorithmTimelineSweep,
                         ::testing::Values(RlhfAlgorithm::kPpo, RlhfAlgorithm::kRemax,
                                           RlhfAlgorithm::kSafeRlhf),
                         [](const ::testing::TestParamInfo<RlhfAlgorithm>& info) {
                           switch (info.param) {
                             case RlhfAlgorithm::kPpo:
                               return "Ppo";
                             case RlhfAlgorithm::kRemax:
                               return "Remax";
                             case RlhfAlgorithm::kSafeRlhf:
                               return "SafeRlhf";
                             default:
                               return "Other";
                           }
                         });

// DesExecutor runs a different queueing discipline (per-device FIFOs), so
// greedy-consistency is off; exclusivity / time / readiness still hold on
// random DAGs.
TEST(TimelineCheckerTest, DesExecutorRandomDagTraceIsClean) {
  Rng rng(7);
  const ClusterSpec spec = ClusterSpec::WithGpus(8);
  DesExecutor executor(spec);
  std::vector<DesExecutor::OpId> ids;
  for (int i = 0; i < 200; ++i) {
    std::vector<DesExecutor::OpId> deps;
    for (int k = 0; k < 3 && !ids.empty(); ++k) {
      deps.push_back(ids[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(ids.size()) - 1))]);
    }
    std::vector<DeviceId> devices;
    const int first = static_cast<int>(rng.UniformInt(0, spec.world_size() - 1));
    const int count = static_cast<int>(rng.UniformInt(1, 3));
    for (int d = 0; d < count; ++d) {
      devices.push_back((first + d) % spec.world_size());
    }
    ids.push_back(executor.Submit("op", "infer", devices, rng.Uniform(0.0, 2.0), deps));
  }
  executor.Run();
  TimelineCheckOptions options;
  options.check_list_scheduling = false;
  TimelineChecker checker(spec, options);
  std::vector<TimelineViolation> violations = checker.Check(executor.trace());
  EXPECT_TRUE(violations.empty()) << FormatViolations(violations);
}

// --- Negative tests: corrupted timelines must be detected -------------------

TimelineCheckOptions LenientOptions() {
  TimelineCheckOptions options;
  options.check_list_scheduling = false;
  return options;
}

TEST(TimelineCheckerTest, DetectsOverlappingSpansOnOneDevice) {
  const ClusterSpec spec = ClusterSpec::WithGpus(4);
  // Device 1 is double-booked for [1.0, 2.0) x [1.5, 2.5) — the simulated
  // equivalent of a data race.
  std::vector<TraceSpan> trace{
      {"a", "infer", {0, 1}, 0.0, 2.0, 0.0},
      {"b", "train", {1, 2}, 1.5, 2.5, 0.0},
  };
  TimelineChecker checker(spec, LenientOptions());
  std::vector<TimelineViolation> violations = checker.Check(trace);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, TimelineViolationKind::kDeviceOverlap);
  EXPECT_EQ(violations[0].device, 1);
  EXPECT_EQ(violations[0].span_index, 1);
}

TEST(TimelineCheckerTest, DetectsTimeTravelAndNegativeDurations) {
  const ClusterSpec spec = ClusterSpec::WithGpus(2);
  std::vector<TraceSpan> trace{
      {"backwards", "infer", {0}, 2.0, 1.0, 0.0},   // end < start
      {"negative", "infer", {1}, -1.0, 0.5, 0.0},   // starts before t=0
  };
  TimelineChecker checker(spec, LenientOptions());
  std::vector<TimelineViolation> violations = checker.Check(trace);
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].kind, TimelineViolationKind::kBadTime);
  EXPECT_EQ(violations[1].kind, TimelineViolationKind::kBadTime);
}

TEST(TimelineCheckerTest, DetectsStartBeforeReady) {
  const ClusterSpec spec = ClusterSpec::WithGpus(2);
  // The op consumed data that only exists at t=5 but ran at t=1.
  std::vector<TraceSpan> trace{{"eager", "infer", {0}, 1.0, 2.0, 5.0}};
  TimelineChecker checker(spec, LenientOptions());
  std::vector<TimelineViolation> violations = checker.Check(trace);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, TimelineViolationKind::kStartBeforeReady);
}

TEST(TimelineCheckerTest, DetectsUnknownDevice) {
  const ClusterSpec spec = ClusterSpec::WithGpus(2);
  std::vector<TraceSpan> trace{{"oob", "infer", {5}, 0.0, 1.0, 0.0}};
  TimelineChecker checker(spec, LenientOptions());
  std::vector<TimelineViolation> violations = checker.Check(trace);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, TimelineViolationKind::kUnknownDevice);
}

TEST(TimelineCheckerTest, DetectsGroupCoverageViolation) {
  const ClusterSpec spec = ClusterSpec::WithGpus(8);
  TimelineChecker checker(spec, LenientOptions());
  checker.RegisterGroup("actor", {0, 1, 2, 3});
  checker.RegisterGroup("critic", {4, 5, 6, 7});
  // A "collective" straddling both pools without a registered group.
  std::vector<TraceSpan> trace{
      {"ok", "infer", {0, 1, 2, 3}, 0.0, 1.0, 0.0},
      {"straddle", "train", {3, 4}, 1.0, 2.0, 0.0},
      {"crosspool", "transfer", {3, 4}, 2.0, 3.0, 0.0},  // Transfers may cross.
  };
  std::vector<TimelineViolation> violations = checker.Check(trace);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, TimelineViolationKind::kGroupNotCovered);
  EXPECT_EQ(violations[0].span_index, 1);
}

TEST(TimelineCheckerTest, DetectsListSchedulingDeviation) {
  const ClusterSpec spec = ClusterSpec::WithGpus(2);
  // Device 0 frees at t=1 and data is ready at t=0, yet the op idles
  // until t=3: the recorded schedule disagrees with greedy list scheduling.
  std::vector<TraceSpan> trace{
      {"first", "infer", {0}, 0.0, 1.0, 0.0},
      {"lazy", "infer", {0}, 3.0, 4.0, 0.0},
  };
  TimelineChecker checker(spec);
  std::vector<TimelineViolation> violations = checker.Check(trace);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind, TimelineViolationKind::kIdleInconsistency);
}

// --- Determinism harness ----------------------------------------------------

TEST(CompareTracesTest, IdenticalRunsCompareEqual) {
  auto run = [] {
    RlhfSystemInstance system = BuildSystem(SmallSystem(RlhfAlgorithm::kPpo));
    EXPECT_TRUE(system.feasible);
    system.RunIteration();
    return system.controller->cluster().trace();
  };
  const std::vector<TraceSpan> a = run();
  const std::vector<TraceSpan> b = run();
  EXPECT_EQ(CompareTraces(a, b), "");
}

TEST(CompareTracesTest, ReportsFirstMismatch) {
  std::vector<TraceSpan> a{{"x", "infer", {0}, 0.0, 1.0, 0.0}};
  std::vector<TraceSpan> b = a;
  b[0].end = 1.0000000001;
  EXPECT_NE(CompareTraces(a, b), "");
  EXPECT_NE(CompareTraces(a, {}), "");
}

}  // namespace
}  // namespace hybridflow
