#include <gtest/gtest.h>

#include <cmath>

#include "src/rlhf/advantage.h"
#include "src/rlhf/losses.h"

namespace hybridflow {
namespace {

// --- Shaped rewards -----------------------------------------------------------

TEST(ShapedRewardsTest, KlPenaltyPerTokenSampleRewardAtEnd) {
  std::vector<float> log_probs = {-1.0f, -2.0f};
  std::vector<float> ref = {-1.5f, -1.5f};
  std::vector<float> rewards = ShapedTokenRewards(log_probs, ref, 3.0f, 0.1f);
  // token 0: -0.1 * (-1.0 + 1.5) = -0.05; token 1: -0.1 * (-0.5) = 0.05 + 3.
  EXPECT_NEAR(rewards[0], -0.05f, 1e-6);
  EXPECT_NEAR(rewards[1], 3.05f, 1e-6);
}

TEST(ShapedRewardsTest, ZeroKlCoefLeavesOnlySampleReward) {
  std::vector<float> rewards = ShapedTokenRewards({-1, -2, -3}, {0, 0, 0}, 1.0f, 0.0f);
  EXPECT_FLOAT_EQ(rewards[0], 0.0f);
  EXPECT_FLOAT_EQ(rewards[1], 0.0f);
  EXPECT_FLOAT_EQ(rewards[2], 1.0f);
}

// --- GAE ------------------------------------------------------------------------

TEST(GaeTest, MatchesHandComputedValues) {
  // gamma=1, lam=1: advantage_t = sum_{k>=t} r_k - V_t (Monte Carlo).
  std::vector<float> rewards = {1.0f, 0.0f, 2.0f};
  std::vector<float> values = {0.5f, 0.5f, 0.5f};
  std::vector<float> advantages;
  std::vector<float> returns;
  GaeFromRewards(rewards, values, 1.0f, 1.0f, &advantages, &returns);
  EXPECT_NEAR(advantages[2], 2.0f - 0.5f, 1e-6);
  EXPECT_NEAR(advantages[1], (0.0f + 2.0f) - 0.5f, 1e-6);
  EXPECT_NEAR(advantages[0], (1.0f + 0.0f + 2.0f) - 0.5f, 1e-6);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(returns[i], advantages[i] + values[i], 1e-6);
  }
}

TEST(GaeTest, LambdaZeroIsOneStepTd) {
  std::vector<float> rewards = {1.0f, 1.0f};
  std::vector<float> values = {0.0f, 0.5f};
  std::vector<float> advantages;
  std::vector<float> returns;
  GaeFromRewards(rewards, values, 1.0f, 0.0f, &advantages, &returns);
  EXPECT_NEAR(advantages[0], 1.0f + 0.5f - 0.0f, 1e-6);  // r + V1 - V0.
  EXPECT_NEAR(advantages[1], 1.0f + 0.0f - 0.5f, 1e-6);
}

TEST(GaeTest, PerfectValuesGiveZeroAdvantage) {
  // With V matching the exact return, every advantage is 0.
  std::vector<float> rewards = {1.0f, 1.0f, 1.0f};
  std::vector<float> values = {3.0f, 2.0f, 1.0f};
  std::vector<float> advantages;
  std::vector<float> returns;
  GaeFromRewards(rewards, values, 1.0f, 0.95f, &advantages, &returns);
  for (float advantage : advantages) {
    EXPECT_NEAR(advantage, 0.0f, 1e-6);
  }
}

// --- ComputeAdvantages across estimators -----------------------------------------

DataBatch ExperienceBatch() {
  DataBatch batch;
  batch.SetTokens("prompts", {{1, 2}, {3, 4}, {5, 6}, {0, 1}});
  batch.SetTokens("responses", {{2, 3}, {4, 5}, {6, 7}, {1, 2}});
  batch.SetFloat("log_probs", {{-1, -1}, {-1, -1}, {-2, -2}, {-1, -2}});
  batch.SetFloat("ref_log_probs", {{-1, -1}, {-1, -1}, {-2, -2}, {-1, -2}});
  batch.SetFloat("rewards", {{1.0f}, {0.0f}, {2.0f}, {1.0f}});
  return batch;
}

TEST(ComputeAdvantagesTest, GaeAddsAdvantagesAndReturns) {
  DataBatch batch = ExperienceBatch();
  batch.SetFloat("values", {{0, 0}, {0, 0}, {0, 0}, {0, 0}});
  AdvantageConfig config;
  config.estimator = AdvantageEstimator::kGae;
  config.kl_coef = 0.0f;
  DataBatch out = ComputeAdvantages(batch, config);
  ASSERT_TRUE(out.HasFloat("advantages"));
  ASSERT_TRUE(out.HasFloat("returns"));
  // Zero values, reward only at the last token: advantage at last token =
  // sample reward; earlier tokens see it through lambda discounting.
  EXPECT_NEAR(out.Float("advantages")[0][1], 1.0f, 1e-6);
  EXPECT_NEAR(out.Float("advantages")[0][0], 0.95f, 1e-6);
}

TEST(ComputeAdvantagesTest, RemaxSubtractsBaseline) {
  DataBatch batch = ExperienceBatch();
  batch.SetFloat("baseline_rewards", {{0.5f}, {0.5f}, {0.5f}, {0.5f}});
  AdvantageConfig config;
  config.estimator = AdvantageEstimator::kRemax;
  config.kl_coef = 0.0f;
  DataBatch out = ComputeAdvantages(batch, config);
  // Row 0: reward 1.0, baseline 0.5 -> every token advantage 0.5.
  EXPECT_NEAR(out.Float("advantages")[0][0], 0.5f, 1e-6);
  EXPECT_NEAR(out.Float("advantages")[0][1], 0.5f, 1e-6);
  // Row 1: reward 0.0 -> advantage -0.5.
  EXPECT_NEAR(out.Float("advantages")[1][1], -0.5f, 1e-6);
}

TEST(ComputeAdvantagesTest, GrpoNormalizesWithinGroups) {
  DataBatch batch = ExperienceBatch();
  AdvantageConfig config;
  config.estimator = AdvantageEstimator::kGrpo;
  config.kl_coef = 0.0f;
  config.group_size = 2;
  DataBatch out = ComputeAdvantages(batch, config);
  // Group 1 = rows {0,1} rewards {1,0}: normalized to ~{+1,-1}.
  EXPECT_GT(out.Float("advantages")[0][1], 0.9f);
  EXPECT_LT(out.Float("advantages")[1][1], -0.9f);
  // Group 2 = rows {2,3} rewards {2,1}: same normalized spread.
  EXPECT_GT(out.Float("advantages")[2][1], 0.9f);
}

TEST(ComputeAdvantagesTest, SafeRlhfSubtractsCostAdvantage) {
  DataBatch batch = ExperienceBatch();
  batch.SetFloat("values", {{0, 0}, {0, 0}, {0, 0}, {0, 0}});
  batch.SetFloat("cost_values", {{0, 0}, {0, 0}, {0, 0}, {0, 0}});
  batch.SetFloat("costs", {{1.0f}, {0.0f}, {0.0f}, {0.0f}});
  AdvantageConfig config;
  config.estimator = AdvantageEstimator::kGae;
  config.kl_coef = 0.0f;
  config.cost_lambda = 0.5f;
  DataBatch with_cost = ComputeAdvantages(batch, config);
  config.cost_lambda = 0.0f;
  batch.SetFloat("costs", {{0.0f}, {0.0f}, {0.0f}, {0.0f}});
  DataBatch without_cost = ComputeAdvantages(batch, config);
  // Row 0 had cost 1.0: its advantage must drop by lambda * cost GAE.
  EXPECT_LT(with_cost.Float("advantages")[0][1], without_cost.Float("advantages")[0][1]);
  EXPECT_TRUE(with_cost.HasFloat("cost_returns"));
}

// --- Losses -----------------------------------------------------------------------

TEST(PolicyLossTest, PpoGradientPushesTowardPositiveAdvantage) {
  Tensor log_probs = Tensor::FromData({2}, {-1.0f, -1.0f}, true);
  Tensor old_log_probs = Tensor::FromData({2}, {-1.0f, -1.0f});
  Tensor advantages = Tensor::FromData({2}, {1.0f, -1.0f});
  PolicyLossConfig config;
  Tensor loss = PolicyLoss(log_probs, old_log_probs, advantages, config);
  loss.Backward();
  // Positive advantage -> increase log-prob (negative gradient of loss).
  EXPECT_LT(log_probs.grad()[0], 0.0f);
  EXPECT_GT(log_probs.grad()[1], 0.0f);
}

TEST(PolicyLossTest, ClippingStopsGradientWhenRatioTooLarge) {
  // Ratio = exp(logp - old) = e^1 ~ 2.7 >> 1+eps with positive advantage:
  // clipped branch is active and the gradient vanishes.
  Tensor log_probs = Tensor::FromData({1}, {0.0f}, true);
  Tensor old_log_probs = Tensor::FromData({1}, {-1.0f});
  Tensor advantages = Tensor::FromData({1}, {1.0f});
  PolicyLossConfig config;
  config.clip_eps = 0.2f;
  Tensor loss = PolicyLoss(log_probs, old_log_probs, advantages, config);
  loss.Backward();
  EXPECT_NEAR(log_probs.grad()[0], 0.0f, 1e-6);
}

TEST(PolicyLossTest, ReinforceIsMinusMeanLogProbTimesAdvantage) {
  Tensor log_probs = Tensor::FromData({2}, {-1.0f, -2.0f}, true);
  Tensor old_log_probs = Tensor::FromData({2}, {-1.0f, -2.0f});
  Tensor advantages = Tensor::FromData({2}, {2.0f, 4.0f});
  PolicyLossConfig config;
  config.kind = PolicyLossKind::kReinforce;
  Tensor loss = PolicyLoss(log_probs, old_log_probs, advantages, config);
  EXPECT_NEAR(loss.item(), -(-1.0f * 2.0f + -2.0f * 4.0f) / 2.0f, 1e-6);
  loss.Backward();
  EXPECT_NEAR(log_probs.grad()[0], -1.0f, 1e-6);  // -adv/2.
  EXPECT_NEAR(log_probs.grad()[1], -2.0f, 1e-6);
}

TEST(ValueLossTest, IsHalfMseWithoutClipping) {
  Tensor values = Tensor::FromData({2}, {1.0f, 2.0f}, true);
  Tensor old_values = Tensor::FromData({2}, {1.0f, 2.0f});
  Tensor returns = Tensor::FromData({2}, {2.0f, 2.0f});
  ValueLossConfig config;
  config.clip_eps = 0.0f;
  Tensor loss = ValueLoss(values, old_values, returns, config);
  EXPECT_NEAR(loss.item(), 0.5f * (1.0f + 0.0f) / 2.0f, 1e-6);
}

TEST(ValueLossTest, ClippingBoundsTheUpdate) {
  // Value moved far from old_values: the clipped branch dominates.
  Tensor values = Tensor::FromData({1}, {5.0f}, true);
  Tensor old_values = Tensor::FromData({1}, {0.0f});
  Tensor returns = Tensor::FromData({1}, {10.0f});
  ValueLossConfig config;
  config.clip_eps = 0.2f;
  Tensor clipped_loss = ValueLoss(values, old_values, returns, config);
  // max(unclipped, clipped) keeps the larger penalty: unclipped (5-10)^2=25,
  // clipped (0.2-10)^2=96.04 -> 0.5*96.04.
  EXPECT_NEAR(clipped_loss.item(), 0.5f * 96.04f, 1e-3);
}

TEST(PretrainLossTest, IsNegativeMeanLogProb) {
  Tensor log_probs = Tensor::FromData({2}, {-1.0f, -3.0f}, true);
  EXPECT_NEAR(PretrainLoss(log_probs).item(), 2.0f, 1e-6);
}

}  // namespace
}  // namespace hybridflow
