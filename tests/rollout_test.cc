// Tests for the continuous-batching rollout engine (src/rollout/).
//
// The load-bearing property is exact equivalence: under greedy decoding the
// engine must produce bitwise-identical responses AND log-probs to the
// static whole-batch loop for every schedule the KV budget induces —
// including schedules with preemption and recompute-on-resume. The
// scheduler tests pin admission-order and preemption semantics; the timing
// tests pin the performance-plane hook; the trace test pins determinism of
// the scheduled DES timeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/analysis/timeline_checker.h"
#include "src/baselines/system_builder.h"
#include "src/common/rng.h"
#include "src/nn/policy_net.h"
#include "src/obs/metrics.h"
#include "src/rollout/engine.h"
#include "src/rollout/scheduler.h"
#include "src/rollout/sequence.h"
#include "src/rollout/timing.h"
#include "src/workers/model_workers.h"
#include "src/workers/token_context.h"

namespace hybridflow {
namespace {

KvBlockConfig KvConfig(int64_t blocks, int64_t block_tokens = 4) {
  KvBlockConfig config;
  config.block_tokens = block_tokens;
  config.num_blocks = blocks;
  config.bytes_per_token = 1.0;
  return config;
}

std::vector<RolloutSequence> MakeSequences(const std::vector<int64_t>& prompts,
                                           int64_t target_new) {
  std::vector<RolloutSequence> sequences(prompts.size());
  for (size_t i = 0; i < prompts.size(); ++i) {
    sequences[i].id = static_cast<int64_t>(i);
    sequences[i].prompt_tokens = prompts[i];
    sequences[i].target_new_tokens = target_new;
  }
  return sequences;
}

std::vector<int64_t> PrefillIds(const StepPlan& plan) {
  std::vector<int64_t> ids;
  ids.reserve(plan.prefill.size());
  for (const PrefillChunk& chunk : plan.prefill) {
    ids.push_back(chunk.id);
  }
  return ids;
}

// --- Scheduler ----------------------------------------------------------------

TEST(RolloutSchedulerTest, FcfsAdmitsInArrivalOrder) {
  DistributedKvManager kv(2, KvConfig(/*blocks=*/64));
  std::vector<RolloutSequence> sequences = MakeSequences({2, 6, 4}, /*target_new=*/4);
  RolloutScheduler scheduler({}, &kv, &sequences);
  for (int64_t id = 0; id < 3; ++id) {
    scheduler.Enqueue(id);
  }
  const StepPlan plan = scheduler.BeginStep();
  EXPECT_EQ(PrefillIds(plan), (std::vector<int64_t>{0, 1, 2}));
  EXPECT_TRUE(plan.decode.empty());
  EXPECT_TRUE(kv.TablesInLockstep());
}

TEST(RolloutSchedulerTest, LongestPrefixFirstAdmitsLongestContext) {
  DistributedKvManager kv(1, KvConfig(/*blocks=*/64));
  std::vector<RolloutSequence> sequences = MakeSequences({2, 6, 4, 6}, /*target_new=*/4);
  RolloutSchedulerConfig config;
  config.policy = RolloutPolicy::kLongestPrefixFirst;
  RolloutScheduler scheduler(config, &kv, &sequences);
  for (int64_t id = 0; id < 4; ++id) {
    scheduler.Enqueue(id);
  }
  // Longest first; equal lengths keep arrival order (stable sort).
  const StepPlan plan = scheduler.BeginStep();
  EXPECT_EQ(PrefillIds(plan), (std::vector<int64_t>{1, 3, 2, 0}));
}

TEST(RolloutSchedulerTest, LongestPrefixFirstBreaksTiesInArrivalOrder) {
  // All-equal contexts: the LPF comparator is indifferent for every pair,
  // so admission must be *exactly* the enqueue order — the stable-sort
  // tie-break contract the serving surface relies on for determinism.
  DistributedKvManager kv(1, KvConfig(/*blocks=*/64));
  std::vector<RolloutSequence> sequences = MakeSequences({4, 4, 4, 4, 4}, /*target_new=*/4);
  RolloutSchedulerConfig config;
  config.policy = RolloutPolicy::kLongestPrefixFirst;
  RolloutScheduler scheduler(config, &kv, &sequences);
  // Enqueue in a scrambled id order; arrival order is what must stick.
  for (int64_t id : {3, 0, 4, 1, 2}) {
    scheduler.Enqueue(id);
  }
  const StepPlan plan = scheduler.BeginStep();
  EXPECT_EQ(PrefillIds(plan), (std::vector<int64_t>{3, 0, 4, 1, 2}));
}

TEST(RolloutSchedulerTest, AdmissionGatedByKvCapacityWithoutBypass) {
  // 4 blocks of 4 tokens. Seq 0 (4 prompt + 1 reserve -> 2 blocks) fits;
  // seq 1 (12 prompt + 1 reserve -> 4 blocks > 3 free) does not. Seq 2
  // would fit, but strict priority must not let it bypass the queue head.
  DistributedKvManager kv(1, KvConfig(/*blocks=*/4));
  std::vector<RolloutSequence> sequences = MakeSequences({4, 12, 2}, /*target_new=*/4);
  RolloutScheduler scheduler({}, &kv, &sequences);
  for (int64_t id = 0; id < 3; ++id) {
    scheduler.Enqueue(id);
  }
  const StepPlan plan = scheduler.BeginStep();
  EXPECT_EQ(PrefillIds(plan), (std::vector<int64_t>{0}));
  EXPECT_EQ(scheduler.waiting().size(), 2u);
  EXPECT_EQ(sequences[1].state, SequenceState::kWaiting);
  EXPECT_EQ(sequences[2].state, SequenceState::kWaiting);
}

TEST(RolloutSchedulerTest, MaxRunningCapsTheBatch) {
  DistributedKvManager kv(1, KvConfig(/*blocks=*/64));
  std::vector<RolloutSequence> sequences = MakeSequences({2, 2, 2, 2}, /*target_new=*/2);
  RolloutSchedulerConfig config;
  config.max_running = 2;
  RolloutScheduler scheduler(config, &kv, &sequences);
  for (int64_t id = 0; id < 4; ++id) {
    scheduler.Enqueue(id);
  }
  EXPECT_EQ(scheduler.BeginStep().rows(), 2);
}

TEST(RolloutSchedulerTest, PreemptsYoungestAndDrainsEverything) {
  // 6 blocks of 2 tokens: one full sequence (2 prompt + 6 new = 4 blocks)
  // fits alone, two cannot both finish -> growth must force preemption,
  // and recompute-on-resume must still complete every sequence.
  DistributedKvManager kv(2, KvConfig(/*blocks=*/6, /*block_tokens=*/2));
  std::vector<RolloutSequence> sequences = MakeSequences({2, 2, 2, 2}, /*target_new=*/6);
  RolloutScheduler scheduler({}, &kv, &sequences);
  for (int64_t id = 0; id < 4; ++id) {
    scheduler.Enqueue(id);
  }
  int64_t guard = 0;
  while (scheduler.HasWork()) {
    ASSERT_LT(guard++, 1000) << "scheduler failed to drain";
    const StepPlan plan = scheduler.BeginStep();
    ASSERT_FALSE(plan.empty());
    scheduler.CommitStep(plan, /*eos_finished=*/{});
  }
  for (const RolloutSequence& sequence : sequences) {
    EXPECT_EQ(sequence.state, SequenceState::kFinished);
    EXPECT_EQ(sequence.generated, 6);
  }
  EXPECT_GT(scheduler.stats().preemptions, 0);
  EXPECT_GT(scheduler.stats().admissions, 4);  // Re-admissions happened.
  EXPECT_EQ(kv.rank(0).used_blocks(), 0);      // Nothing leaked.
  EXPECT_TRUE(kv.TablesInLockstep());
}

TEST(RolloutSchedulerTest, EosFinishReleasesBlocksImmediately) {
  // Seq 1 holds 3 of a 4-token block, so its append allocates nothing this
  // step and the freed block of the EOS-finished seq 0 is visible.
  DistributedKvManager kv(1, KvConfig(/*blocks=*/8));
  std::vector<RolloutSequence> sequences = MakeSequences({4, 3}, /*target_new=*/4);
  RolloutScheduler scheduler({}, &kv, &sequences);
  scheduler.Enqueue(0);
  scheduler.Enqueue(1);
  const StepPlan plan = scheduler.BeginStep();
  ASSERT_EQ(plan.rows(), 2);
  const int64_t used_before = kv.rank(0).used_blocks();
  scheduler.CommitStep(plan, /*eos_finished=*/{0});
  EXPECT_EQ(sequences[0].state, SequenceState::kFinished);
  EXPECT_EQ(sequences[0].generated, 1);  // The EOS token itself.
  EXPECT_EQ(sequences[1].state, SequenceState::kDecode);
  EXPECT_LT(kv.rank(0).used_blocks(), used_before);
}

// --- Engine: greedy equivalence ----------------------------------------------

// The static path's semantics, restated locally: every live row advances one
// token per step from its ContextWindow; EOS is appended, then finishes the
// row. Tokens/log-probs go through the same SampleLogitsRow as the engine.
struct ReferenceOutput {
  std::vector<std::vector<int64_t>> responses;
  std::vector<std::vector<float>> log_probs;
};

ReferenceOutput StaticGreedyReference(const PolicyNet& net,
                                      const std::vector<std::vector<int64_t>>& prompts,
                                      const RolloutLimits& limits) {
  const size_t batch = prompts.size();
  ReferenceOutput out;
  out.responses.resize(batch);
  out.log_probs.resize(batch);
  std::vector<bool> finished(batch, false);
  Rng unused(1);
  for (int64_t step = 0; step < limits.max_new_tokens; ++step) {
    std::vector<size_t> live;
    std::vector<std::vector<int64_t>> contexts;
    for (size_t i = 0; i < batch; ++i) {
      if (finished[i]) {
        continue;
      }
      live.push_back(i);
      contexts.push_back(ContextWindow(prompts[i], out.responses[i], out.responses[i].size(),
                                       net.config().context_window));
    }
    if (live.empty()) {
      break;
    }
    const Tensor logits = net.Forward(contexts);
    for (size_t a = 0; a < live.size(); ++a) {
      const size_t i = live[a];
      float log_prob = 0.0f;
      const int64_t token = SampleLogitsRow(logits, static_cast<int64_t>(a), /*temperature=*/1.0,
                                            /*do_sample=*/false, unused, &log_prob);
      out.responses[i].push_back(token);
      out.log_probs[i].push_back(log_prob);
      if (limits.use_eos && token == limits.eos_token) {
        finished[i] = true;
      }
    }
  }
  return out;
}

// Property: for randomized EOS-truncated workloads, KV budgets tight
// enough to force preemption, and any prefill chunk size — including
// chunks smaller than the shortest prompt (1) and at least the longest
// context (1000) — continuous batching is invisible in the output:
// responses and log-probs match the static reference exactly.
TEST(RolloutEngineTest, GreedyMatchesStaticReferenceUnderPreemption) {
  int64_t total_preemptions = 0;
  int64_t total_partial_chunks = 0;
  const int64_t chunk_sizes[] = {0, 1, 2, 3, 5, 1000};
  for (int64_t chunk : chunk_sizes) {
    for (uint64_t seed = 1; seed <= 6; ++seed) {
      Rng rng(seed * 977);
      PolicyNetConfig net_config;
      net_config.vocab_size = 16;
      net_config.context_window = 3;
      net_config.embed_dim = 8;
      net_config.hidden_dim = 16;
      Rng net_rng = rng.Fork(1);
      const PolicyNet net(net_config, net_rng);

      const int64_t batch = rng.UniformInt(3, 9);
      std::vector<std::vector<int64_t>> prompts(static_cast<size_t>(batch));
      for (std::vector<int64_t>& prompt : prompts) {
        prompt.resize(static_cast<size_t>(rng.UniformInt(2, 6)));
        for (int64_t& token : prompt) {
          token = rng.UniformInt(0, net_config.vocab_size - 1);
        }
      }

      RolloutLimits limits;
      limits.max_new_tokens = 6;
      limits.use_eos = true;
      limits.eos_token = net_config.vocab_size - 2;

      RolloutOptions options;
      options.policy = seed % 2 == 0 ? RolloutPolicy::kFcfs : RolloutPolicy::kLongestPrefixFirst;
      options.block_tokens = 2;
      options.num_blocks = 7;  // One full sequence (<= 12 tokens) barely fits.
      options.prefill_chunk_tokens = chunk;

      const RolloutEngine engine(net, limits, options, /*kv_ranks=*/2);
      Rng engine_rng = rng.Fork(2);
      const RolloutShardResult got =
          engine.Run(prompts, /*do_sample=*/false, /*temperature=*/1.0, engine_rng);
      const ReferenceOutput want = StaticGreedyReference(net, prompts, limits);

      ASSERT_EQ(got.responses.size(), want.responses.size())
          << "seed " << seed << " chunk " << chunk;
      for (size_t i = 0; i < prompts.size(); ++i) {
        EXPECT_EQ(got.responses[i], want.responses[i])
            << "seed " << seed << " chunk " << chunk << " row " << i;
        ASSERT_EQ(got.log_probs[i].size(), want.log_probs[i].size())
            << "seed " << seed << " chunk " << chunk << " row " << i;
        for (size_t k = 0; k < want.log_probs[i].size(); ++k) {
          EXPECT_EQ(got.log_probs[i][k], want.log_probs[i][k])
              << "seed " << seed << " chunk " << chunk << " row " << i << " token " << k;
        }
      }
      total_preemptions += got.stats.preemptions;
      if (chunk > 0 && chunk < 6) {
        total_partial_chunks += got.stats.prefill_chunks;
        EXPECT_LE(got.stats.max_prefill_tokens_step, chunk)
            << "seed " << seed << " chunk " << chunk;
      }
      EXPECT_EQ(got.stats.sequences, batch);
      EXPECT_GT(got.stats.steps, 0);
      EXPECT_GE(got.stats.admissions, batch);
    }
  }
  // The tight budgets must actually have exercised preempt/resume, and the
  // small chunk sizes must actually have split prefills across steps.
  EXPECT_GT(total_preemptions, 0);
  EXPECT_GT(total_partial_chunks, 0);
}

// Property: the prefix-sharing cache (docs/KVCACHE.md) is invisible in the
// output. Prompts drawn from a small pool force sharing between live
// sequences and hits on retained blocks of finished/preempted ones; tight
// KV budgets force preemption on top. Greedy responses and log-probs must
// still match the static reference bitwise — with and without full-length
// admission reservations.
TEST(RolloutEngineTest, GreedyMatchesStaticReferenceWithPrefixSharing) {
  int64_t total_preemptions = 0;
  int64_t total_skipped = 0;
  const int64_t chunk_sizes[] = {0, 1, 3, 1000};
  for (int64_t chunk : chunk_sizes) {
    for (uint64_t seed = 1; seed <= 6; ++seed) {
      Rng rng(seed * 1409);
      PolicyNetConfig net_config;
      net_config.vocab_size = 16;
      net_config.context_window = 3;
      net_config.embed_dim = 8;
      net_config.hidden_dim = 16;
      Rng net_rng = rng.Fork(1);
      const PolicyNet net(net_config, net_rng);

      // Two recurring prompts plus unique ones: recurrences share prompt
      // blocks (group-sampling shape), unique prompts exercise retention
      // hits only on their own resumes.
      const std::vector<std::vector<int64_t>> pool = {{1, 2, 3, 4}, {5, 6, 7, 8, 9}};
      const int64_t batch = rng.UniformInt(4, 9);
      std::vector<std::vector<int64_t>> prompts(static_cast<size_t>(batch));
      for (std::vector<int64_t>& prompt : prompts) {
        const int64_t pick = rng.UniformInt(0, 3);
        if (pick < 2) {
          prompt = pool[static_cast<size_t>(pick)];
        } else {
          prompt.resize(static_cast<size_t>(rng.UniformInt(2, 6)));
          for (int64_t& token : prompt) {
            token = rng.UniformInt(0, net_config.vocab_size - 1);
          }
        }
      }

      RolloutLimits limits;
      limits.max_new_tokens = 6;
      limits.use_eos = true;
      limits.eos_token = net_config.vocab_size - 2;

      RolloutOptions options;
      options.policy = seed % 2 == 0 ? RolloutPolicy::kFcfs : RolloutPolicy::kLongestPrefixFirst;
      options.block_tokens = 2;
      options.num_blocks = 7;  // One full sequence (<= 12 tokens) barely fits.
      options.prefill_chunk_tokens = chunk;
      options.enable_prefix_cache = true;
      options.reserve_full_length = seed % 3 == 0;

      const RolloutEngine engine(net, limits, options, /*kv_ranks=*/2);
      Rng engine_rng = rng.Fork(2);
      const RolloutShardResult got =
          engine.Run(prompts, /*do_sample=*/false, /*temperature=*/1.0, engine_rng);
      const ReferenceOutput want = StaticGreedyReference(net, prompts, limits);

      for (size_t i = 0; i < prompts.size(); ++i) {
        EXPECT_EQ(got.responses[i], want.responses[i])
            << "seed " << seed << " chunk " << chunk << " row " << i;
        ASSERT_EQ(got.log_probs[i].size(), want.log_probs[i].size())
            << "seed " << seed << " chunk " << chunk << " row " << i;
        for (size_t k = 0; k < want.log_probs[i].size(); ++k) {
          EXPECT_EQ(got.log_probs[i][k], want.log_probs[i][k])
              << "seed " << seed << " chunk " << chunk << " row " << i << " token " << k;
        }
      }
      total_preemptions += got.stats.preemptions;
      total_skipped += got.stats.prefix_skipped_tokens;
    }
  }
  // The sweep must actually have exercised both mechanisms whose
  // interaction the property protects.
  EXPECT_GT(total_preemptions, 0);
  EXPECT_GT(total_skipped, 0);
}

// Group sampling (n responses per prompt): the leader's prompt blocks are
// indexed at admission, so every follower shares them and skips all but
// the last prompt token's prefill — n-1 of n prompt prefills disappear.
TEST(RolloutEngineTest, GroupSamplingSkipsFollowerPromptPrefills) {
  Rng rng(53);
  PolicyNetConfig net_config;
  net_config.vocab_size = 16;
  net_config.context_window = 3;
  net_config.embed_dim = 8;
  net_config.hidden_dim = 16;
  const PolicyNet net(net_config, rng);
  RolloutLimits limits;
  limits.max_new_tokens = 4;
  RolloutOptions options;
  options.block_tokens = 2;
  options.enable_prefix_cache = true;  // Auto-sized KV: no preemption noise.
  const RolloutEngine engine(net, limits, options, /*kv_ranks=*/2);
  const int64_t n = 4;
  const std::vector<int64_t> prompt = {3, 1, 4, 1};
  const std::vector<std::vector<int64_t>> prompts(static_cast<size_t>(n), prompt);
  Rng engine_rng(54);
  const RolloutShardResult result =
      engine.Run(prompts, /*do_sample=*/false, /*temperature=*/1.0, engine_rng);
  // Each of the n-1 followers skips its full prompt except the final token
  // (whose logits emit the first response token).
  const int64_t prompt_len = static_cast<int64_t>(prompt.size());
  EXPECT_EQ(result.stats.prefix_skipped_tokens, (n - 1) * (prompt_len - 1));
  EXPECT_EQ(result.stats.preemptions, 0);
  EXPECT_EQ(result.stats.shared_blocks_high_water, prompt_len / options.block_tokens);
  // Sharing is invisible: all group members decode greedily to the same
  // response, and it matches the static reference.
  const ReferenceOutput want = StaticGreedyReference(net, prompts, limits);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(result.responses[static_cast<size_t>(i)], want.responses[static_cast<size_t>(i)]);
    EXPECT_EQ(result.responses[static_cast<size_t>(i)], result.responses[0]);
  }
}

TEST(RolloutSchedulerTest, PrefixSharingSurvivesPreemptionWithoutLeaks) {
  // Group-sampled sequences under a KV budget tight enough to preempt:
  // the drain must complete, retained prompt blocks must serve resumes,
  // and the refcount audit must hold with zero physical usage at the end.
  KvBlockConfig config = KvConfig(/*blocks=*/7, /*block_tokens=*/2);
  config.enable_prefix_cache = true;
  DistributedKvManager kv(2, config);
  std::vector<RolloutSequence> sequences = MakeSequences({4, 4, 4, 4}, /*target_new=*/4);
  for (RolloutSequence& sequence : sequences) {
    sequence.block_hashes = GroupBlockHashes(/*group=*/7, /*full_blocks=*/2);
  }
  RolloutScheduler scheduler({}, &kv, &sequences);
  for (int64_t id = 0; id < 4; ++id) {
    scheduler.Enqueue(id);
  }
  int64_t guard = 0;
  while (scheduler.HasWork()) {
    ASSERT_LT(guard++, 1000) << "scheduler failed to drain";
    const StepPlan plan = scheduler.BeginStep();
    ASSERT_FALSE(plan.empty());
    scheduler.CommitStep(plan, /*eos_finished=*/{});
  }
  for (const RolloutSequence& sequence : sequences) {
    EXPECT_EQ(sequence.state, SequenceState::kFinished);
    EXPECT_EQ(sequence.generated, 4);
  }
  EXPECT_GT(scheduler.stats().prefix_skipped_tokens, 0);
  EXPECT_EQ(kv.rank(0).used_blocks(), 0);
  EXPECT_TRUE(kv.rank(0).RefcountsConsistent());
  EXPECT_TRUE(kv.rank(1).RefcountsConsistent());
  EXPECT_TRUE(kv.TablesInLockstep());
}

TEST(RolloutSchedulerTest, ReserveFullLengthEliminatesDecodePreemption) {
  // Same tight-cache setup whose optimistic admission preempts (see
  // PreemptsYoungestAndDrainsEverything): full-length reservations instead
  // admit only what can finish, so the drain completes with zero
  // preemptions and zero recompute.
  DistributedKvManager kv(2, KvConfig(/*blocks=*/6, /*block_tokens=*/2));
  std::vector<RolloutSequence> sequences = MakeSequences({2, 2, 2, 2}, /*target_new=*/6);
  RolloutSchedulerConfig config;
  config.reserve_full_length = true;
  RolloutScheduler scheduler(config, &kv, &sequences);
  for (int64_t id = 0; id < 4; ++id) {
    scheduler.Enqueue(id);
  }
  int64_t guard = 0;
  while (scheduler.HasWork()) {
    ASSERT_LT(guard++, 1000) << "scheduler failed to drain";
    const StepPlan plan = scheduler.BeginStep();
    ASSERT_FALSE(plan.empty());
    scheduler.CommitStep(plan, /*eos_finished=*/{});
  }
  for (const RolloutSequence& sequence : sequences) {
    EXPECT_EQ(sequence.state, SequenceState::kFinished);
    EXPECT_EQ(sequence.generated, 6);
    EXPECT_EQ(sequence.reserved_blocks, 0);  // Returned on finish.
  }
  EXPECT_EQ(scheduler.stats().preemptions, 0);
  EXPECT_EQ(scheduler.stats().resumes, 0);
  EXPECT_EQ(scheduler.stats().admissions, 4);  // First admissions only.
  EXPECT_EQ(kv.rank(0).used_blocks(), 0);
}

TEST(RolloutSchedulerTest, CancelReleasesReservationAndRetainsPrompt) {
  KvBlockConfig kv_config = KvConfig(/*blocks=*/10, /*block_tokens=*/2);
  kv_config.enable_prefix_cache = true;
  DistributedKvManager kv(1, kv_config);
  std::vector<RolloutSequence> sequences = MakeSequences({4, 4}, /*target_new=*/8);
  for (RolloutSequence& sequence : sequences) {
    sequence.block_hashes = GroupBlockHashes(/*group=*/11, /*full_blocks=*/2);
  }
  RolloutSchedulerConfig config;
  config.reserve_full_length = true;
  RolloutScheduler scheduler(config, &kv, &sequences);
  scheduler.Enqueue(0);
  scheduler.Enqueue(1);
  // Full length = 12 tokens = 6 blocks each: seq 1's reservation (6 - 2
  // referenced prefix blocks = 4) fits next to seq 0's, both run.
  StepPlan plan = scheduler.BeginStep();
  scheduler.CommitStep(plan, /*eos_finished=*/{});
  ASSERT_EQ(sequences[0].state, SequenceState::kDecode);
  // Mid-decode cancel: residency and the reservation must both return.
  scheduler.Cancel(0);
  EXPECT_EQ(sequences[0].state, SequenceState::kCancelled);
  EXPECT_EQ(sequences[0].reserved_blocks, 0);
  EXPECT_EQ(scheduler.stats().cancelled, 1);
  // Seq 0's private tail freed; the shared prompt blocks stay referenced
  // by seq 1 (nothing evictable yet, nothing leaked).
  EXPECT_TRUE(kv.rank(0).RefcountsConsistent());
  int64_t guard = 0;
  while (scheduler.HasWork()) {
    ASSERT_LT(guard++, 1000);
    const StepPlan next = scheduler.BeginStep();
    ASSERT_FALSE(next.empty());
    scheduler.CommitStep(next, /*eos_finished=*/{});
  }
  EXPECT_EQ(sequences[1].state, SequenceState::kFinished);
  EXPECT_EQ(kv.rank(0).used_blocks(), 0);
  EXPECT_GT(kv.rank(0).cached_blocks(), 0);  // Prompt retained for hits.
  EXPECT_TRUE(kv.rank(0).RefcountsConsistent());
}

TEST(RolloutSchedulerTest, ExpiryMidPrefillReleasesResidencyWithoutLeaks) {
  // A TTFT-overdue sequence expiring mid-chunked-prefill must release its
  // partial residency; its already-hashed full blocks are retained.
  KvBlockConfig kv_config = KvConfig(/*blocks=*/16, /*block_tokens=*/2);
  kv_config.enable_prefix_cache = true;
  DistributedKvManager kv(1, kv_config);
  std::vector<RolloutSequence> sequences = MakeSequences({6, 2}, /*target_new=*/2);
  sequences[0].block_hashes = GroupBlockHashes(/*group=*/3, /*full_blocks=*/3);
  sequences[0].ttft_deadline = 0.5;
  RolloutSchedulerConfig config;
  config.prefill_chunk_tokens = 2;
  config.expire_overdue = true;
  RolloutScheduler scheduler(config, &kv, &sequences);
  scheduler.Enqueue(0);
  scheduler.Enqueue(1);
  // Step 1: seq 0 takes the whole chunk budget (2 of 6 tokens resident).
  StepPlan plan = scheduler.BeginStep();
  ASSERT_EQ(plan.prefill.size(), 1u);
  ASSERT_FALSE(plan.prefill[0].completes);
  scheduler.CommitStep(plan, /*eos_finished=*/{});
  ASSERT_EQ(sequences[0].state, SequenceState::kPrefill);
  ASSERT_GT(kv.rank(0).used_blocks(), 0);
  // The clock passes the deadline before its first token: expired.
  scheduler.SetSimNow(1.0);
  plan = scheduler.BeginStep();
  EXPECT_EQ(sequences[0].state, SequenceState::kExpired);
  EXPECT_EQ(scheduler.stats().expired, 1);
  scheduler.CommitStep(plan, /*eos_finished=*/{});
  int64_t guard = 0;
  while (scheduler.HasWork()) {
    ASSERT_LT(guard++, 1000);
    const StepPlan next = scheduler.BeginStep();
    scheduler.CommitStep(next, /*eos_finished=*/{});
  }
  EXPECT_EQ(sequences[1].state, SequenceState::kFinished);
  EXPECT_EQ(kv.rank(0).used_blocks(), 0);
  EXPECT_GT(kv.rank(0).cached_blocks(), 0);  // The expired row's full block.
  EXPECT_TRUE(kv.rank(0).RefcountsConsistent());
}

TEST(RolloutSchedulerTest, ChunkedPrefillRespectsBudgetAndDefersEmission) {
  // Budget 4 tokens/step over a 10-token prompt: three chunks (4+4+2); the
  // sequence must not emit a token until the last chunk completes.
  DistributedKvManager kv(1, KvConfig(/*blocks=*/64));
  std::vector<RolloutSequence> sequences = MakeSequences({10}, /*target_new=*/3);
  RolloutSchedulerConfig config;
  config.prefill_chunk_tokens = 4;
  RolloutScheduler scheduler(config, &kv, &sequences);
  scheduler.Enqueue(0);

  StepPlan plan = scheduler.BeginStep();
  ASSERT_EQ(plan.prefill.size(), 1u);
  EXPECT_EQ(plan.prefill[0].tokens, 4);
  EXPECT_FALSE(plan.prefill[0].completes);
  EXPECT_EQ(plan.EmittingRows(), 0);
  scheduler.CommitStep(plan, /*eos_finished=*/{});
  EXPECT_EQ(sequences[0].generated, 0);
  EXPECT_EQ(sequences[0].state, SequenceState::kPrefill);

  plan = scheduler.BeginStep();
  ASSERT_EQ(plan.prefill.size(), 1u);
  EXPECT_EQ(plan.prefill[0].tokens, 4);
  EXPECT_FALSE(plan.prefill[0].completes);
  scheduler.CommitStep(plan, /*eos_finished=*/{});
  EXPECT_EQ(sequences[0].generated, 0);

  plan = scheduler.BeginStep();
  ASSERT_EQ(plan.prefill.size(), 1u);
  EXPECT_EQ(plan.prefill[0].tokens, 2);
  EXPECT_TRUE(plan.prefill[0].completes);
  EXPECT_EQ(plan.EmittingRows(), 1);
  scheduler.CommitStep(plan, /*eos_finished=*/{});
  EXPECT_EQ(sequences[0].generated, 1);
  EXPECT_EQ(sequences[0].state, SequenceState::kDecode);
  EXPECT_EQ(scheduler.stats().prefill_chunks, 2);
  EXPECT_EQ(scheduler.stats().max_prefill_tokens_step, 4);
}

TEST(RolloutSchedulerTest, ChunkedPrefillSharesBudgetAcrossAdmissions) {
  // Budget 6: the first prompt (4 tokens) completes within the step, the
  // second (5 tokens) gets the remaining 2 and catches up next step while
  // the first decodes alongside it.
  DistributedKvManager kv(1, KvConfig(/*blocks=*/64));
  std::vector<RolloutSequence> sequences = MakeSequences({4, 5}, /*target_new=*/4);
  RolloutSchedulerConfig config;
  config.prefill_chunk_tokens = 6;
  RolloutScheduler scheduler(config, &kv, &sequences);
  scheduler.Enqueue(0);
  scheduler.Enqueue(1);

  StepPlan plan = scheduler.BeginStep();
  ASSERT_EQ(plan.prefill.size(), 2u);
  EXPECT_TRUE(plan.prefill[0].completes);
  EXPECT_EQ(plan.prefill[1].tokens, 2);
  EXPECT_FALSE(plan.prefill[1].completes);
  scheduler.CommitStep(plan, /*eos_finished=*/{});

  plan = scheduler.BeginStep();
  ASSERT_EQ(plan.prefill.size(), 1u);
  EXPECT_EQ(plan.prefill[0].id, 1);
  EXPECT_EQ(plan.prefill[0].tokens, 3);
  EXPECT_TRUE(plan.prefill[0].completes);
  EXPECT_EQ(plan.decode, (std::vector<int64_t>{0}));
  scheduler.CommitStep(plan, /*eos_finished=*/{});
  EXPECT_EQ(sequences[0].generated, 2);
  EXPECT_EQ(sequences[1].generated, 1);
}

TEST(RolloutEngineTest, AutoSizedCacheRunsWithoutPreemption) {
  Rng rng(7);
  PolicyNetConfig net_config;
  net_config.vocab_size = 16;
  net_config.context_window = 3;
  net_config.embed_dim = 8;
  net_config.hidden_dim = 16;
  const PolicyNet net(net_config, rng);
  RolloutLimits limits;
  limits.max_new_tokens = 4;
  const RolloutEngine engine(net, limits, RolloutOptions{}, /*kv_ranks=*/1);
  Rng engine_rng(8);
  const std::vector<std::vector<int64_t>> prompts(8, std::vector<int64_t>{1, 2, 3});
  const RolloutShardResult result =
      engine.Run(prompts, /*do_sample=*/false, /*temperature=*/1.0, engine_rng);
  EXPECT_EQ(result.stats.preemptions, 0);
  EXPECT_EQ(result.stats.max_running_batch, 8);
  EXPECT_EQ(result.stats.steps, 4);  // Pure continuous: one step per token.
  for (const std::vector<int64_t>& response : result.responses) {
    EXPECT_EQ(response.size(), 4u);
  }
}

TEST(RolloutEngineTest, SamplingModeProducesValidPerSequenceOutput) {
  Rng rng(21);
  PolicyNetConfig net_config;
  net_config.vocab_size = 16;
  net_config.context_window = 3;
  net_config.embed_dim = 8;
  net_config.hidden_dim = 16;
  const PolicyNet net(net_config, rng);
  RolloutLimits limits;
  limits.max_new_tokens = 5;
  RolloutOptions options;
  options.block_tokens = 2;
  options.num_blocks = 6;  // Tight: schedules differ step to step.
  const RolloutEngine engine(net, limits, options, /*kv_ranks=*/1);
  const std::vector<std::vector<int64_t>> prompts(6, std::vector<int64_t>{4, 5});
  // Per-sequence forked streams: the same seed must reproduce the same
  // samples even though the schedule interleaves rows differently.
  Rng rng_a(99);
  Rng rng_b(99);
  const RolloutShardResult a = engine.Run(prompts, /*do_sample=*/true, /*temperature=*/1.0, rng_a);
  const RolloutShardResult b = engine.Run(prompts, /*do_sample=*/true, /*temperature=*/1.0, rng_b);
  for (size_t i = 0; i < prompts.size(); ++i) {
    EXPECT_EQ(a.responses[i].size(), 5u);
    EXPECT_EQ(a.responses[i], b.responses[i]);
    for (float lp : a.log_probs[i]) {
      EXPECT_LE(lp, 1e-5f);
    }
  }
}

TEST(RolloutEngineTest, MetricsCountersAdvance) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const double steps_before =
      registry.GetCounter("rollout.steps_total", {{"plane", "data"}}).Value();
  const double preemptions_before =
      registry.GetCounter("rollout.preemptions_total", {{"plane", "data"}}).Value();
  Rng rng(31);
  PolicyNetConfig net_config;
  net_config.vocab_size = 16;
  net_config.context_window = 3;
  net_config.embed_dim = 8;
  net_config.hidden_dim = 16;
  const PolicyNet net(net_config, rng);
  RolloutLimits limits;
  limits.max_new_tokens = 6;
  RolloutOptions options;
  options.block_tokens = 2;
  options.num_blocks = 5;
  const RolloutEngine engine(net, limits, options, /*kv_ranks=*/1);
  Rng engine_rng(32);
  const std::vector<std::vector<int64_t>> prompts(5, std::vector<int64_t>{1, 2, 3, 4});
  const RolloutShardResult result =
      engine.Run(prompts, /*do_sample=*/false, /*temperature=*/1.0, engine_rng);
  EXPECT_GT(result.stats.preemptions, 0);
  EXPECT_GT(registry.GetCounter("rollout.steps_total", {{"plane", "data"}}).Value(),
            steps_before);
  EXPECT_GT(registry.GetCounter("rollout.preemptions_total", {{"plane", "data"}}).Value(),
            preemptions_before);
}

// --- Actor integration --------------------------------------------------------

RealComputeOptions SmallRolloutReal(uint64_t seed = 11) {
  RealComputeOptions real;
  real.enabled = true;
  real.seed = seed;
  real.task = AlignmentTask{};
  real.task.prompt_len = 4;
  real.task.response_len = 4;
  real.net.vocab_size = real.task.vocab_size;
  real.net.context_window = 3;
  real.net.embed_dim = 8;
  real.net.hidden_dim = 16;
  return real;
}

WorkerGroupOptions RolloutActorGroupOptions() {
  WorkerGroupOptions options;
  options.name = "actor";
  options.model = ModelSpec::Llama7B();
  options.trainable = true;
  options.train_cfg = ParallelConfig{1, 4, 2};
  return options;
}

TEST(RolloutWorkersTest, ContinuousActorMatchesStaticActorGreedy) {
  RlhfWorkloadSpec workload;
  workload.global_batch = 64;
  workload.prompt_len = 256;
  workload.response_len = 256;
  DataBatch static_out;
  DataBatch continuous_out;
  RolloutStats continuous_stats;
  for (int variant = 0; variant < 2; ++variant) {
    Controller controller(ClusterSpec::WithGpus(8));
    std::shared_ptr<ResourcePool> pool = controller.CreatePoolRange("pool", 0, 8);
    ActorOptions actor_options;
    actor_options.gen = GenParallelConfig{1, 2};
    actor_options.engine_mode = ActorEngineMode::kHybridFlow;
    if (variant == 1) {
      actor_options.rollout.mode = RolloutMode::kContinuous;
      actor_options.rollout.block_tokens = 2;
      actor_options.rollout.num_blocks = 8;  // Tight enough to preempt.
    }
    ActorWorkerGroup actor(RolloutActorGroupOptions(), pool, &controller, SmallRolloutReal(),
                           actor_options);
    PromptDataset dataset(actor.real().task, /*seed=*/5);
    BatchFuture prompts = BatchFuture::Immediate(dataset.NextBatch(16));
    BatchFuture out = actor.GenerateSequences(prompts, workload, /*do_sample=*/false);
    if (variant == 0) {
      static_out = out.data;
    } else {
      continuous_out = out.data;
      continuous_stats = actor.rollout_stats();
    }
  }
  ASSERT_EQ(continuous_out.batch_size(), static_out.batch_size());
  EXPECT_EQ(continuous_out.Tokens("responses"), static_out.Tokens("responses"));
  EXPECT_EQ(continuous_out.Float("log_probs"), static_out.Float("log_probs"));
  EXPECT_GT(continuous_stats.sequences, 0);
  EXPECT_GT(continuous_stats.preemptions, 0);  // The tight cache was felt.
}

// --- Performance-plane timing -------------------------------------------------

TEST(RolloutTimingTest, ConstrainedBudgetPreemptsAndIsDeterministic) {
  const PerfModel perf(ModelSpec::Llama7B(), ClusterSpec::WithGpus(8));
  const GenParallelConfig gen{1, 2};
  const std::vector<DeviceId> devices{0, 1};
  const std::vector<NominalSequence> sequences(64, NominalSequence{256, 256});
  // Budget for ~40 blocks of 16 tokens: far less than 64 full sequences.
  const double budget = 40.0 * 16.0 * perf.KvBytesPerTokenPerGpu(gen);
  RolloutOptions options;
  options.mode = RolloutMode::kContinuous;
  const RolloutSimResult first =
      SimulateContinuousGeneration(perf, gen, devices, sequences, budget, options);
  const RolloutSimResult second =
      SimulateContinuousGeneration(perf, gen, devices, sequences, budget, options);
  EXPECT_GT(first.stats.preemptions, 0);
  EXPECT_GT(first.stats.steps, 256);  // Waves: more steps than one pass.
  EXPECT_GT(first.time.prefill_seconds, 0.0);
  EXPECT_GT(first.time.decode_seconds, 0.0);
  EXPECT_EQ(first.time.total(), second.time.total());
  EXPECT_EQ(first.stats.steps, second.stats.steps);
  EXPECT_EQ(first.stats.preemptions, second.stats.preemptions);
  EXPECT_EQ(first.stats.kv_high_water_blocks, second.stats.kv_high_water_blocks);
}

TEST(RolloutTimingTest, SkewedResponseLengthsBeatStaticWaveModel) {
  const PerfModel perf(ModelSpec::Llama7B(), ClusterSpec::WithGpus(8));
  const GenParallelConfig gen{1, 2};
  const std::vector<DeviceId> devices{0, 1};
  // 80% short / 20% long responses. The static path pads everyone to the
  // longest response; continuous batching retires short sequences early and
  // backfills, so it must win on makespan.
  std::vector<NominalSequence> sequences;
  Rng rng(17);
  for (int i = 0; i < 64; ++i) {
    const int64_t response = rng.Uniform(0.0, 1.0) < 0.8 ? 64 : 512;
    sequences.push_back(NominalSequence{256, response});
  }
  const double budget = 200.0 * 16.0 * perf.KvBytesPerTokenPerGpu(gen);
  RolloutOptions options;
  options.mode = RolloutMode::kContinuous;
  const RolloutSimResult continuous =
      SimulateContinuousGeneration(perf, gen, devices, sequences, budget, options);
  const GenTimeBreakdown fixed =
      perf.GenerateTime(gen, devices, /*batch=*/64, /*prompt_len=*/256,
                        /*response_len=*/512, budget, /*use_kv_cache=*/true);
  EXPECT_LT(continuous.time.total(), fixed.total());
}

TEST(RolloutTimingTest, ChunkedPrefillFlattensDecodeStepLatency) {
  // One 4096-token prompt landing mid-run spikes the unchunked step every
  // decode row waits behind; a 256-token chunk budget must flatten it.
  const PerfModel perf(ModelSpec::Llama7B(), ClusterSpec::WithGpus(8));
  const GenParallelConfig gen{1, 2};
  const std::vector<DeviceId> devices{0, 1};
  std::vector<NominalSequence> sequences(32, NominalSequence{128, 256});
  sequences.push_back(NominalSequence{4096, 256});
  const double budget = 1e12;  // Ample KV: isolate the prefill effect.

  RolloutOptions unchunked;
  unchunked.mode = RolloutMode::kContinuous;
  RolloutOptions chunked = unchunked;
  chunked.prefill_chunk_tokens = 256;

  const RolloutSimResult spiky =
      SimulateContinuousGeneration(perf, gen, devices, sequences, budget, unchunked);
  const RolloutSimResult flat =
      SimulateContinuousGeneration(perf, gen, devices, sequences, budget, chunked);

  EXPECT_EQ(spiky.stats.prefill_chunks, 0);
  EXPECT_GT(flat.stats.prefill_chunks, 0);
  EXPECT_LE(flat.stats.max_prefill_tokens_step, 256);
  // Per-step latency stays flat: the worst chunked step is a small multiple
  // of a typical decode step, far below the unchunked prefill spike.
  EXPECT_LT(flat.max_step_seconds, 0.5 * spiky.max_step_seconds);
  // Every response still completes: same total tokens both ways.
  EXPECT_EQ(flat.stats.sequences, spiky.stats.sequences);
}

TEST(RolloutTimingTest, PrefixCacheSkipsGroupPromptPrefillsInSimPlane) {
  // Perf-plane mirror of the data-plane group-sampling test: equal
  // prompt_group ids hash equal, so the simulator skips n-1 of every n
  // prompt prefills and charges less prefill time for the same schedule.
  const PerfModel perf(ModelSpec::Llama7B(), ClusterSpec::WithGpus(8));
  const GenParallelConfig gen{1, 2};
  const std::vector<DeviceId> devices{0, 1};
  const int64_t groups = 8;
  const int64_t n = 4;
  const int64_t prompt = 64;  // 4 full 16-token blocks in the sim geometry.
  std::vector<NominalSequence> sequences;
  for (int64_t g = 0; g < groups; ++g) {
    for (int64_t i = 0; i < n; ++i) {
      sequences.push_back(NominalSequence{prompt, /*response_tokens=*/32, /*prompt_group=*/g});
    }
  }
  RolloutOptions cached;
  cached.mode = RolloutMode::kContinuous;
  cached.enable_prefix_cache = true;
  RolloutOptions uncached = cached;
  uncached.enable_prefix_cache = false;
  const double budget = 1e12;  // Ample KV: isolate the sharing effect.
  const RolloutSimResult with_cache =
      SimulateContinuousGeneration(perf, gen, devices, sequences, budget, cached);
  const RolloutSimResult without_cache =
      SimulateContinuousGeneration(perf, gen, devices, sequences, budget, uncached);
  EXPECT_EQ(with_cache.stats.prefix_skipped_tokens, groups * (n - 1) * (prompt - 1));
  EXPECT_EQ(without_cache.stats.prefix_skipped_tokens, 0);
  EXPECT_LT(with_cache.time.prefill_seconds, without_cache.time.prefill_seconds);
  EXPECT_GT(with_cache.stats.shared_blocks_high_water, 0);
}

TEST(RolloutTimingTest, ZeroLengthResponsesFinishInstantly) {
  const PerfModel perf(ModelSpec::Llama7B(), ClusterSpec::WithGpus(8));
  const GenParallelConfig gen{1, 1};
  const std::vector<DeviceId> devices{0};
  const std::vector<NominalSequence> sequences(4, NominalSequence{128, 0});
  const RolloutSimResult result = SimulateContinuousGeneration(
      perf, gen, devices, sequences, /*kv_budget_bytes=*/1e12, RolloutOptions{});
  EXPECT_EQ(result.stats.steps, 0);
  EXPECT_EQ(result.time.total(), 0.0);
}

// --- End-to-end trace determinism --------------------------------------------

SystemBuildConfig ContinuousPpoConfig() {
  SystemBuildConfig config;
  config.system = RlhfSystem::kHybridFlow;
  config.algorithm = RlhfAlgorithm::kPpo;
  config.num_gpus = 8;
  config.real_compute = true;
  config.real_batch = 16;
  config.seed = 91;
  config.workload.global_batch = 128;
  config.workload.prompt_len = 256;
  config.workload.response_len = 256;
  config.rollout.mode = RolloutMode::kContinuous;
  return config;
}

TEST(RolloutTraceTest, ContinuousTimelineIsDeterministicAndClean) {
  std::vector<TraceSpan> first_trace;
  std::vector<TraceSpan> second_trace;
  for (int run = 0; run < 2; ++run) {
    RlhfSystemInstance system = BuildSystem(ContinuousPpoConfig());
    ASSERT_TRUE(system.feasible);
    for (int i = 0; i < 2; ++i) {
      system.RunIteration();
    }
    EXPECT_GT(system.actor->last_rollout_sim_stats().steps, 0);
    const ClusterState& cluster = system.controller->cluster();
    (run == 0 ? first_trace : second_trace) = cluster.trace();
    if (run == 0) {
      TimelineChecker checker(system.controller->spec());
      for (const auto& pool : system.controller->pools()) {
        checker.RegisterGroup(pool->name(), pool->devices());
      }
      const std::vector<TimelineViolation> violations = checker.Check(cluster);
      EXPECT_TRUE(violations.empty()) << FormatViolations(violations);
    }
  }
  EXPECT_EQ(CompareTraces(first_trace, second_trace), "") << "schedules diverged";
}

}  // namespace
}  // namespace hybridflow
