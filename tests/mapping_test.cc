#include <gtest/gtest.h>

#include "src/baselines/system_builder.h"
#include "src/mapping/device_mapper.h"

namespace hybridflow {
namespace {

DeviceMapper MakeMapper(RlhfAlgorithm algorithm, const ModelSpec& model,
                        const RlhfWorkloadSpec& workload = RlhfWorkloadSpec()) {
  return DeviceMapper(DataflowModels(algorithm, model, model), workload,
                      ClusterSpec::WithGpus(8));
}

TEST(DeviceMapperTest, PpoPlacementCountIsBellNumber) {
  // 4 models -> Bell(4) = 15 placements (§6).
  DeviceMapper mapper = MakeMapper(RlhfAlgorithm::kPpo, ModelSpec::Llama7B());
  MappingResult result = mapper.Map(8);
  EXPECT_EQ(result.placements_examined, 15);
}

TEST(DeviceMapperTest, SafeRlhfPlacementCountIsBellFive) {
  // 5 models -> Bell(5) = 52 placements.
  DeviceMapper mapper = MakeMapper(RlhfAlgorithm::kSafeRlhf, ModelSpec::Llama7B());
  MappingResult result = mapper.Map(8);
  EXPECT_EQ(result.placements_examined, 52);
}

TEST(DeviceMapperTest, CanonicalPlacementsExamineOne) {
  DeviceMapper mapper = MakeMapper(RlhfAlgorithm::kPpo, ModelSpec::Llama7B());
  for (PlacementKind kind :
       {PlacementKind::kColocate, PlacementKind::kStandalone, PlacementKind::kSplit}) {
    MappingResult result = mapper.Map(8, kind);
    EXPECT_EQ(result.placements_examined, 1) << PlacementKindName(kind);
  }
}

TEST(DeviceMapperTest, ColocatePutsEverythingInOneSet) {
  DeviceMapper mapper = MakeMapper(RlhfAlgorithm::kPpo, ModelSpec::Llama7B());
  MappingResult result = mapper.Map(8, PlacementKind::kColocate);
  ASSERT_TRUE(result.feasible);
  ASSERT_EQ(result.sets.size(), 1u);
  EXPECT_EQ(result.sets[0].gpus, 8);
  EXPECT_EQ(result.sets[0].model_names.size(), 4u);
}

TEST(DeviceMapperTest, StandaloneGivesEveryModelItsOwnSet) {
  DeviceMapper mapper = MakeMapper(RlhfAlgorithm::kPpo, ModelSpec::Llama7B());
  MappingResult result = mapper.Map(8, PlacementKind::kStandalone);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.sets.size(), 4u);
  int total = 0;
  for (const ColocatedSetResult& set : result.sets) {
    total += set.gpus;
  }
  EXPECT_EQ(total, 8);
}

TEST(DeviceMapperTest, SplitPairsActorWithReference) {
  DeviceMapper mapper = MakeMapper(RlhfAlgorithm::kPpo, ModelSpec::Llama7B());
  MappingResult result = mapper.Map(16, PlacementKind::kSplit);
  ASSERT_TRUE(result.feasible);
  ASSERT_EQ(result.sets.size(), 2u);
  const int actor_set = result.SetOf("actor");
  EXPECT_EQ(result.SetOf("reference"), actor_set);
  EXPECT_NE(result.SetOf("critic"), actor_set);
  EXPECT_NE(result.SetOf("reward"), actor_set);
}

TEST(DeviceMapperTest, AutoIsNeverWorseThanCanonicalPlacements) {
  // Algorithm 1 searches a superset of the canonical placements, so its
  // estimate must be at least as good.
  for (const ModelSpec& model : {ModelSpec::Llama7B(), ModelSpec::Llama13B()}) {
    DeviceMapper mapper(DataflowModels(RlhfAlgorithm::kPpo, model, model),
                        RlhfWorkloadSpec(), ClusterSpec::WithGpus(16));
    MappingResult with_auto = mapper.Map(16, PlacementKind::kAuto);
    ASSERT_TRUE(with_auto.feasible);
    for (PlacementKind kind :
         {PlacementKind::kColocate, PlacementKind::kStandalone, PlacementKind::kSplit}) {
      MappingResult canonical = mapper.Map(16, kind);
      if (canonical.feasible) {
        EXPECT_LE(with_auto.est_iteration_seconds,
                  canonical.est_iteration_seconds * (1.0 + 1e-9))
            << model.name << " " << PlacementKindName(kind);
      }
    }
  }
}

TEST(DeviceMapperTest, InfeasibleWhenModelCannotFit) {
  // 70B PPO on 2 GPUs: 4 models of training state cannot fit.
  DeviceMapper mapper(DataflowModels(RlhfAlgorithm::kPpo, ModelSpec::Llama70B(),
                                     ModelSpec::Llama70B()),
                      RlhfWorkloadSpec(), ClusterSpec::WithGpus(2));
  MappingResult result = mapper.Map(2);
  EXPECT_FALSE(result.feasible);
}

TEST(DeviceMapperTest, CacheEliminatesRepeatedSimulations) {
  DeviceMapper mapper = MakeMapper(RlhfAlgorithm::kPpo, ModelSpec::Llama7B());
  MappingResult first = mapper.Map(8);
  const int64_t simulations_after_first = first.simulations;
  MappingResult second = mapper.Map(8);
  // A second identical search is almost entirely cache hits.
  EXPECT_LT(second.simulations - simulations_after_first,
            simulations_after_first / 4);
  EXPECT_GT(second.cache_hits, first.cache_hits);
}

TEST(DeviceMapperTest, AutoParallelRespectsMemory) {
  DeviceMapper mapper = MakeMapper(RlhfAlgorithm::kPpo, ModelSpec::Llama70B());
  MappedModelDesc actor{"actor", ModelSpec::Llama70B(), true, false, true};
  ModelMapping mapping = mapper.AutoParallel(actor, 32);
  ASSERT_TRUE(mapping.feasible);
  // 18 B/param * 69e9 / mp <= 0.85 * 80 GB -> mp >= ~19.
  EXPECT_GE(mapping.train.model_parallel_size(), 19);
}

TEST(DeviceMapperTest, AutoParallelPrefersSmallerGenTp) {
  // §8.4: generation runs best with a smaller TP size than training.
  DeviceMapper mapper = MakeMapper(RlhfAlgorithm::kPpo, ModelSpec::Llama7B());
  MappedModelDesc actor{"actor", ModelSpec::Llama7B(), true, false, true};
  ModelMapping mapping = mapper.AutoParallel(actor, 16);
  ASSERT_TRUE(mapping.feasible);
  EXPECT_LE(mapping.gen.tp * mapping.gen.pp, mapping.train.model_parallel_size());
}

TEST(DeviceMapperTest, MinAllocGrowsWithModelSize) {
  DeviceMapper small = MakeMapper(RlhfAlgorithm::kPpo, ModelSpec::Llama7B());
  DeviceMapper big(DataflowModels(RlhfAlgorithm::kPpo, ModelSpec::Llama70B(),
                                  ModelSpec::Llama70B()),
                   RlhfWorkloadSpec(), ClusterSpec::WithGpus(128));
  EXPECT_LE(small.MinAlloc({0}, 8), 4);
  EXPECT_GT(big.MinAlloc({0}, 128), 8);
}

TEST(DeviceMapperTest, ReportsSearchStatistics) {
  DeviceMapper mapper = MakeMapper(RlhfAlgorithm::kPpo, ModelSpec::Llama7B());
  MappingResult result = mapper.Map(8);
  EXPECT_GT(result.simulations, 0);
  EXPECT_GT(result.wall_seconds, 0.0);
  EXPECT_TRUE(result.feasible);
  EXPECT_GT(result.est_iteration_seconds, 0.0);
}

TEST(DeviceMapperTest, SetsCoverDisjointDeviceRanges) {
  DeviceMapper mapper = MakeMapper(RlhfAlgorithm::kPpo, ModelSpec::Llama7B());
  MappingResult result = mapper.Map(8, PlacementKind::kStandalone);
  ASSERT_TRUE(result.feasible);
  int expected_first = 0;
  for (const ColocatedSetResult& set : result.sets) {
    EXPECT_EQ(set.first_device, expected_first);
    expected_first += set.gpus;
  }
  EXPECT_EQ(expected_first, 8);
}

}  // namespace
}  // namespace hybridflow
