// Zero-overhead contract: with HF_SYNC_CONTRACTS_ENABLED forced to 0
// (the Release default), the annotated primitives carry no hooks, no
// name slot, and no dependency on the lock-graph library. This binary is
// the proof: its CMake target predefines HF_SYNC_CONTRACTS_ENABLED=0 and
// links NO hybridflow libraries — if any hook call survived the gate,
// this test would fail to link against hf_sync_contracts' symbols.
#include <gtest/gtest.h>

#include <mutex>

#include "src/common/annotations.h"

namespace hybridflow {
namespace {

static_assert(!Mutex::kSyncContractsEnabled,
              "this TU must be compiled with HF_SYNC_CONTRACTS_ENABLED=0");
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "with contracts off, Mutex must be layout-identical to std::mutex");

TEST(SyncContractsReleaseTest, HooksCompileToNoOps) {
  // An ABBA inversion that the contract-checked build reports; here it
  // must be completely inert (nothing records it, nothing prints).
  Mutex a("release_a");
  Mutex b("release_b");
  {
    MutexLock hold_a(a);
    MutexLock then_b(b);
  }
  {
    MutexLock hold_b(b);
    MutexLock then_a(a);
  }
  SUCCEED();
}

TEST(SyncContractsReleaseTest, CondVarStillWorks) {
  Mutex mutex("release_cv");
  CondVar cv;
  bool ready = false;
  // Exercise the primitive single-threaded: notify first, then verify the
  // predicate path (no wait needed) — Wait's wakeup hook is compiled out.
  {
    MutexLock lock(mutex);
    ready = true;
  }
  cv.NotifyOne();
  cv.NotifyAll();
  MutexLock lock(mutex);
  while (!ready) {
    cv.Wait(mutex);
  }
  EXPECT_TRUE(ready);
}

}  // namespace
}  // namespace hybridflow
