// Tests for the serving front end (src/serving/ + src/data/arrival_trace).
//
// Load-bearing properties:
//   * SLO-aware admission (priority / EDF / weighted fair) reorders only
//     *which* request is admitted next — under greedy decoding every
//     uncancelled request's response and log-probs stay bitwise-identical
//     to the plain FCFS path, across forced preemption, cancellation, and
//     expiry of other requests.
//   * Every terminal exit (finish, cancel, expire) returns its KV blocks:
//     no leak in any lifecycle corner (cancel while waiting, cancel
//     mid-prefill-chunk, cancel while preempted, expiry racing the final
//     token).
//   * Arrival traces are deterministic given a seed, and SLO-aware
//     admission beats FCFS on high-priority p99 TTFT on bursty and diurnal
//     traces (the serving claim bench/bench_serving.cc measures).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/data/arrival_trace.h"
#include "src/nn/policy_net.h"
#include "src/obs/json_util.h"
#include "src/serving/frontend.h"
#include "src/serving/request.h"
#include "src/serving/sim.h"
#include "src/sim/topology.h"

namespace hybridflow {
namespace {

KvBlockConfig KvConfig(int64_t blocks, int64_t block_tokens = 4) {
  KvBlockConfig config;
  config.block_tokens = block_tokens;
  config.num_blocks = blocks;
  config.bytes_per_token = 1.0;
  return config;
}

std::vector<RolloutSequence> MakeSequences(const std::vector<int64_t>& prompts,
                                           int64_t target_new) {
  std::vector<RolloutSequence> sequences(prompts.size());
  for (size_t i = 0; i < prompts.size(); ++i) {
    sequences[i].id = static_cast<int64_t>(i);
    sequences[i].prompt_tokens = prompts[i];
    sequences[i].target_new_tokens = target_new;
  }
  return sequences;
}

std::vector<int64_t> PrefillIds(const StepPlan& plan) {
  std::vector<int64_t> ids;
  ids.reserve(plan.prefill.size());
  for (const PrefillChunk& chunk : plan.prefill) {
    ids.push_back(chunk.id);
  }
  return ids;
}

void Drain(RolloutScheduler& scheduler) {
  int64_t guard = 0;
  while (scheduler.HasWork()) {
    ASSERT_LT(guard++, 1000) << "scheduler failed to drain";
    const StepPlan plan = scheduler.BeginStep();
    scheduler.CommitStep(plan, /*eos_finished=*/{});
  }
}

// --- Arrival traces -----------------------------------------------------------

ArrivalTraceConfig TwoTenantTrace(TraceShape shape) {
  ArrivalTraceConfig config;
  config.shape = shape;
  config.rate = 20.0;
  config.duration = 8.0;
  TenantSpec interactive;
  interactive.tenant = 0;
  interactive.share = 1.0;
  interactive.priority = 5;
  interactive.ttft_slo = 0.5;
  TenantSpec batch;
  batch.tenant = 1;
  batch.share = 2.0;
  batch.prompt_min = 16;
  batch.prompt_max = 48;
  config.tenants = {interactive, batch};
  return config;
}

TEST(ArrivalTraceTest, DeterministicGivenSeedAndSortedWithDenseIndices) {
  const ArrivalTraceConfig config = TwoTenantTrace(TraceShape::kBursty);
  const std::vector<ArrivalRecord> a = GenerateArrivalTrace(config, 42);
  const std::vector<ArrivalRecord> b = GenerateArrivalTrace(config, 42);
  const std::vector<ArrivalRecord> c = GenerateArrivalTrace(config, 43);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  bool differs = a.size() != c.size();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, static_cast<int64_t>(i));
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
    EXPECT_EQ(a[i].target_new_tokens, b[i].target_new_tokens);
    if (i > 0) {
      EXPECT_GE(a[i].arrival, a[i - 1].arrival);
    }
    EXPECT_LT(a[i].arrival, config.duration);
    if (!differs && i < c.size() && a[i].arrival != c[i].arrival) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs) << "different seeds produced the same trace";
}

TEST(ArrivalTraceTest, TenantMetadataAndDeadlinesStampedFromSpecs) {
  const std::vector<ArrivalRecord> trace =
      GenerateArrivalTrace(TwoTenantTrace(TraceShape::kPoisson), 7);
  int64_t interactive = 0;
  int64_t batch = 0;
  for (const ArrivalRecord& record : trace) {
    if (record.tenant == 0) {
      ++interactive;
      EXPECT_EQ(record.priority, 5);
      EXPECT_DOUBLE_EQ(record.ttft_deadline, record.arrival + 0.5);
    } else {
      ++batch;
      EXPECT_EQ(record.tenant, 1);
      EXPECT_EQ(record.ttft_deadline, 0.0);
      EXPECT_GE(record.prompt_tokens, 16);
      EXPECT_LE(record.prompt_tokens, 48);
    }
  }
  EXPECT_GT(interactive, 0);
  EXPECT_GT(batch, 0);  // Both tenants present in the mix.
}

TEST(ArrivalTraceTest, PerTenantRequestShapesSurviveMixChanges) {
  // Changing tenant 1's share reassigns arrivals, but tenant 0's k-th
  // request must keep its sizes: shapes come from a per-tenant stream.
  ArrivalTraceConfig base = TwoTenantTrace(TraceShape::kPoisson);
  ArrivalTraceConfig reweighted = base;
  reweighted.tenants[1].share = 9.0;
  const std::vector<ArrivalRecord> a = GenerateArrivalTrace(base, 11);
  const std::vector<ArrivalRecord> b = GenerateArrivalTrace(reweighted, 11);
  const auto tenant0_shapes = [](const std::vector<ArrivalRecord>& trace) {
    std::vector<std::pair<int64_t, int64_t>> shapes;
    for (const ArrivalRecord& record : trace) {
      if (record.tenant == 0) {
        shapes.push_back({record.prompt_tokens, record.target_new_tokens});
      }
    }
    return shapes;
  };
  const auto shapes_a = tenant0_shapes(a);
  const auto shapes_b = tenant0_shapes(b);
  const size_t shared = std::min(shapes_a.size(), shapes_b.size());
  ASSERT_GT(shared, 0u);
  for (size_t i = 0; i < shared; ++i) {
    EXPECT_EQ(shapes_a[i], shapes_b[i]) << "tenant-0 request " << i;
  }
}

TEST(ArrivalTraceTest, RateShapesMatchTheirEnvelope) {
  ArrivalTraceConfig config;
  config.rate = 10.0;
  config.shape = TraceShape::kBursty;
  config.burst_on = 1.0;
  config.burst_off = 1.0;
  config.burst_factor = 3.0;
  EXPECT_DOUBLE_EQ(TraceRateAt(config, 0.5), 30.0);  // ON window.
  EXPECT_DOUBLE_EQ(TraceRateAt(config, 1.5), 10.0);  // OFF window.
  config.shape = TraceShape::kDiurnal;
  config.diurnal_period = 4.0;
  config.diurnal_depth = 0.5;
  EXPECT_DOUBLE_EQ(TraceRateAt(config, 1.0), 15.0);  // Peak of the sinusoid.
  EXPECT_DOUBLE_EQ(TraceRateAt(config, 3.0), 5.0);   // Trough.
  TraceShape parsed;
  ASSERT_TRUE(ParseTraceShape("diurnal", &parsed));
  EXPECT_EQ(parsed, TraceShape::kDiurnal);
  EXPECT_FALSE(ParseTraceShape("sawtooth", &parsed));
}

// --- Scheduler admission policies --------------------------------------------

TEST(ServingSchedulerTest, PriorityAdmitsHigherFirstWithArrivalTies) {
  DistributedKvManager kv(1, KvConfig(/*blocks=*/64));
  std::vector<RolloutSequence> sequences = MakeSequences({4, 4, 4, 4}, /*target_new=*/2);
  sequences[0].priority = 0;
  sequences[1].priority = 7;
  sequences[2].priority = 7;
  sequences[3].priority = 3;
  RolloutSchedulerConfig config;
  config.admission = AdmissionPolicy::kPriority;
  RolloutScheduler scheduler(config, &kv, &sequences);
  for (int64_t id = 0; id < 4; ++id) {
    scheduler.Enqueue(id);
  }
  EXPECT_EQ(PrefillIds(scheduler.BeginStep()), (std::vector<int64_t>{1, 2, 3, 0}));
}

TEST(ServingSchedulerTest, DeadlineAdmitsEarliestFirstAndDeadlineFreeLast) {
  DistributedKvManager kv(1, KvConfig(/*blocks=*/64));
  std::vector<RolloutSequence> sequences = MakeSequences({4, 4, 4, 4}, /*target_new=*/2);
  sequences[0].ttft_deadline = 0.0;  // No SLO: sorts last.
  sequences[1].ttft_deadline = 5.0;
  sequences[2].ttft_deadline = 2.0;
  sequences[3].ttft_deadline = 5.0;  // Tie with 1: arrival order.
  RolloutSchedulerConfig config;
  config.admission = AdmissionPolicy::kDeadline;
  RolloutScheduler scheduler(config, &kv, &sequences);
  for (int64_t id = 0; id < 4; ++id) {
    scheduler.Enqueue(id);
  }
  EXPECT_EQ(PrefillIds(scheduler.BeginStep()), (std::vector<int64_t>{2, 1, 3, 0}));
}

TEST(ServingSchedulerTest, WeightedFairInterleavesPerDeficitRounds) {
  // Tenant 7 weighs 2.0, tenant 9 weighs 1.0, every context costs 4 tokens
  // and the quantum is 4: each round admits two of tenant 7's requests and
  // one of tenant 9's, starting at the cursor (tenant 7).
  DistributedKvManager kv(1, KvConfig(/*blocks=*/64));
  std::vector<RolloutSequence> sequences = MakeSequences({4, 4, 4, 4, 4, 4}, /*target_new=*/2);
  for (int64_t id : {0, 1, 2, 3}) {
    sequences[static_cast<size_t>(id)].tenant = 7;
  }
  for (int64_t id : {4, 5}) {
    sequences[static_cast<size_t>(id)].tenant = 9;
  }
  RolloutSchedulerConfig config;
  config.admission = AdmissionPolicy::kWeightedFair;
  config.fair_quantum_tokens = 4;
  config.tenant_weights = {{7, 2.0}, {9, 1.0}};
  RolloutScheduler scheduler(config, &kv, &sequences);
  for (int64_t id = 0; id < 6; ++id) {
    scheduler.Enqueue(id);
  }
  EXPECT_EQ(PrefillIds(scheduler.BeginStep()), (std::vector<int64_t>{0, 1, 4, 2, 3, 5}));
}

TEST(ServingSchedulerTest, WeightedFairBlockedTenantDoesNotStarveOthers) {
  // Tenant 1's queue head (14 tokens -> 4 blocks + reserve) cannot fit
  // while tenant 0's small requests can: fair queueing must serve tenant 0
  // past the blocked tenant instead of stalling the whole admission.
  DistributedKvManager kv(1, KvConfig(/*blocks=*/4));
  std::vector<RolloutSequence> sequences = MakeSequences({14, 4, 4}, /*target_new=*/2);
  sequences[0].tenant = 1;
  sequences[1].tenant = 0;
  sequences[2].tenant = 0;
  RolloutSchedulerConfig config;
  config.admission = AdmissionPolicy::kWeightedFair;
  config.fair_quantum_tokens = 64;
  RolloutScheduler scheduler(config, &kv, &sequences);
  scheduler.Enqueue(0);  // Tenant 1 arrives first.
  scheduler.Enqueue(1);
  scheduler.Enqueue(2);
  const StepPlan plan = scheduler.BeginStep();
  EXPECT_EQ(PrefillIds(plan), (std::vector<int64_t>{1, 2}));  // Both small fit.
  EXPECT_EQ(sequences[0].state, SequenceState::kWaiting);
}

// --- Cancellation and expiry edge cases --------------------------------------

TEST(ServingSchedulerTest, CancelWhileWaitingLeavesNoResidencyAndSkipsAdmission) {
  DistributedKvManager kv(2, KvConfig(/*blocks=*/64));
  std::vector<RolloutSequence> sequences = MakeSequences({4, 4}, /*target_new=*/2);
  RolloutScheduler scheduler({}, &kv, &sequences);
  scheduler.Enqueue(0);
  scheduler.Enqueue(1);
  scheduler.Cancel(1);
  EXPECT_EQ(sequences[1].state, SequenceState::kCancelled);
  EXPECT_EQ(scheduler.waiting().size(), 1u);
  Drain(scheduler);
  EXPECT_EQ(sequences[0].state, SequenceState::kFinished);
  EXPECT_EQ(sequences[1].generated, 0);
  EXPECT_EQ(scheduler.stats().cancelled, 1);
  EXPECT_EQ(kv.rank(0).used_blocks(), 0);
  EXPECT_TRUE(kv.TablesInLockstep());
}

TEST(ServingSchedulerTest, CancelMidPrefillChunkReturnsAllBlocks) {
  // Chunked prefill: seq 0's 8-token context enters compute 2 tokens per
  // step. Cancel after the first partial chunk, while its full context's
  // blocks are resident but prefill has not completed.
  DistributedKvManager kv(1, KvConfig(/*blocks=*/16, /*block_tokens=*/2));
  std::vector<RolloutSequence> sequences = MakeSequences({8, 2}, /*target_new=*/2);
  RolloutSchedulerConfig config;
  config.prefill_chunk_tokens = 2;
  RolloutScheduler scheduler(config, &kv, &sequences);
  scheduler.Enqueue(0);
  scheduler.Enqueue(1);
  const StepPlan plan = scheduler.BeginStep();
  ASSERT_FALSE(plan.prefill.empty());
  EXPECT_FALSE(plan.prefill[0].completes);  // Mid-chunk by construction.
  scheduler.CommitStep(plan, {});
  ASSERT_EQ(sequences[0].state, SequenceState::kPrefill);
  const int64_t resident_before = kv.rank(0).used_blocks();
  EXPECT_GT(resident_before, 0);
  scheduler.Cancel(0);
  EXPECT_EQ(sequences[0].state, SequenceState::kCancelled);
  EXPECT_EQ(sequences[0].kv_tokens, 0);
  EXPECT_LT(kv.rank(0).used_blocks(), resident_before);
  Drain(scheduler);
  EXPECT_EQ(sequences[1].state, SequenceState::kFinished);
  EXPECT_EQ(kv.rank(0).used_blocks(), 0);
}

TEST(ServingSchedulerTest, CancelWhilePreemptedRemovesFromRequeue) {
  // Tight cache forces preemption; the victim sits in the waiting queue
  // with generated > 0 (recompute-on-resume). Cancelling it there must
  // remove it without touching KV (its blocks were freed at preemption).
  DistributedKvManager kv(2, KvConfig(/*blocks=*/6, /*block_tokens=*/2));
  std::vector<RolloutSequence> sequences = MakeSequences({2, 2, 2, 2}, /*target_new=*/6);
  RolloutScheduler scheduler({}, &kv, &sequences);
  for (int64_t id = 0; id < 4; ++id) {
    scheduler.Enqueue(id);
  }
  int64_t preempted = -1;
  int64_t guard = 0;
  while (scheduler.HasWork() && preempted < 0) {
    ASSERT_LT(guard++, 1000);
    const StepPlan plan = scheduler.BeginStep();
    scheduler.CommitStep(plan, {});
    for (int64_t id : scheduler.waiting()) {
      if (sequences[static_cast<size_t>(id)].generated > 0) {
        preempted = id;
        break;
      }
    }
  }
  ASSERT_GE(preempted, 0) << "workload never preempted";
  const int64_t tokens_kept = sequences[static_cast<size_t>(preempted)].generated;
  scheduler.Cancel(preempted);
  EXPECT_EQ(sequences[static_cast<size_t>(preempted)].state, SequenceState::kCancelled);
  EXPECT_EQ(sequences[static_cast<size_t>(preempted)].generated, tokens_kept);
  EXPECT_TRUE(std::find(scheduler.waiting().begin(), scheduler.waiting().end(), preempted) ==
              scheduler.waiting().end());
  Drain(scheduler);
  for (const RolloutSequence& sequence : sequences) {
    if (sequence.id != preempted) {
      EXPECT_EQ(sequence.state, SequenceState::kFinished);
    }
  }
  EXPECT_EQ(kv.rank(0).used_blocks(), 0);
  EXPECT_TRUE(kv.TablesInLockstep());
}

TEST(ServingSchedulerTest, ExpiryRacesTheFinalTokenAtTheStepBoundary) {
  DistributedKvManager kv(1, KvConfig(/*blocks=*/64));
  std::vector<RolloutSequence> sequences = MakeSequences({2, 2, 2}, /*target_new=*/2);
  sequences[0].ttft_deadline = 1.0;  // Served before the deadline: finishes.
  sequences[1].ttft_deadline = 1.0;  // Still tokenless past it: expires.
  sequences[2].ttft_deadline = 1.0;  // First token in time: runs to finish.
  RolloutSchedulerConfig config;
  config.expire_overdue = true;
  config.max_running = 2;  // Seq 1 must wait behind 0 and 2.
  RolloutScheduler scheduler(config, &kv, &sequences);
  for (int64_t id = 0; id < 3; ++id) {
    scheduler.Enqueue(id);
  }
  scheduler.SetSimNow(0.5);
  const StepPlan first = scheduler.BeginStep();
  EXPECT_EQ(PrefillIds(first), (std::vector<int64_t>{0, 1}));
  scheduler.SetSimNow(0.9);  // First tokens for 0 and 1 land in time.
  scheduler.CommitStep(first, {});

  // The deadline passes. Seq 2 never got its first token: expired at the
  // top of the next step even though it could have emitted this very step.
  // Seqs 0 and 1 met TTFT (generated > 0) and run on to completion.
  scheduler.SetSimNow(1.5);
  const StepPlan second = scheduler.BeginStep();
  EXPECT_EQ(sequences[2].state, SequenceState::kExpired);
  EXPECT_EQ(PrefillIds(second), std::vector<int64_t>{});
  EXPECT_EQ(second.decode, (std::vector<int64_t>{0, 1}));
  scheduler.CommitStep(second, {});
  EXPECT_EQ(sequences[0].state, SequenceState::kFinished);
  EXPECT_EQ(sequences[1].state, SequenceState::kFinished);
  EXPECT_EQ(scheduler.stats().expired, 1);
  EXPECT_FALSE(scheduler.HasWork());
  EXPECT_EQ(kv.rank(0).used_blocks(), 0);
}

TEST(ServingSchedulerTest, ExpiryDrainingAllWorkReturnsAnEmptyPlan) {
  DistributedKvManager kv(1, KvConfig(/*blocks=*/64));
  std::vector<RolloutSequence> sequences = MakeSequences({2, 2}, /*target_new=*/2);
  sequences[0].ttft_deadline = 1.0;
  sequences[1].ttft_deadline = 1.0;
  RolloutSchedulerConfig config;
  config.expire_overdue = true;
  RolloutScheduler scheduler(config, &kv, &sequences);
  scheduler.Enqueue(0);
  scheduler.Enqueue(1);
  scheduler.SetSimNow(2.0);
  const StepPlan plan = scheduler.BeginStep();
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(scheduler.HasWork());
  EXPECT_EQ(scheduler.stats().expired, 2);
  EXPECT_EQ(kv.rank(0).used_blocks(), 0);
}

// --- Data-plane frontend: greedy equivalence ---------------------------------

PolicyNet TestNet() {
  PolicyNetConfig net_config;
  net_config.vocab_size = 16;
  net_config.context_window = 3;
  net_config.embed_dim = 8;
  net_config.hidden_dim = 16;
  Rng net_rng(1234);
  return PolicyNet(net_config, net_rng);
}

std::vector<ServingRequest> TestRequests() {
  // 8 requests, 2 tenants, arrivals spread over 2 virtual seconds.
  Rng rng(55);
  std::vector<ServingRequest> requests;
  for (int64_t i = 0; i < 8; ++i) {
    ServingRequest request;
    request.id = i;
    request.tenant = i % 2;
    request.priority = i % 2 == 0 ? 5 : 0;
    request.arrival = 0.25 * static_cast<double>(i % 4);
    request.max_new_tokens = 4 + (i % 3);
    request.prompt.resize(static_cast<size_t>(rng.UniformInt(2, 6)));
    for (int64_t& token : request.prompt) {
      token = rng.UniformInt(0, 15);
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

ServingResult ServeWith(const PolicyNet& net, const std::vector<ServingRequest>& requests,
                        const ServingFrontendConfig& config,
                        const StreamCallback& on_token = nullptr) {
  ServingFrontend frontend(net, config, /*kv_ranks=*/2);
  Rng rng(999);  // Greedy decoding never draws from it.
  return frontend.Serve(requests, /*do_sample=*/false, /*temperature=*/1.0, rng, on_token);
}

TEST(ServingFrontendTest, GreedyOutputsInvariantAcrossAdmissionPolicies) {
  const PolicyNet net = TestNet();
  const std::vector<ServingRequest> requests = TestRequests();

  // Baseline: plain FCFS, ample KV, no SLO enforcement — the rollout path.
  ServingFrontendConfig baseline;
  baseline.scheduler.expire_overdue = false;
  const ServingResult want = ServeWith(net, requests, baseline);
  ASSERT_EQ(want.report.finished, static_cast<int64_t>(requests.size()));

  for (const AdmissionPolicy admission :
       {AdmissionPolicy::kQueueOrder, AdmissionPolicy::kPriority, AdmissionPolicy::kDeadline,
        AdmissionPolicy::kWeightedFair}) {
    ServingFrontendConfig config;
    config.scheduler.admission = admission;
    config.scheduler.expire_overdue = false;
    config.scheduler.tenant_weights = {{0, 3.0}, {1, 1.0}};
    config.block_tokens = 2;
    config.num_blocks = 7;  // Tight: forces preemption and queueing.
    config.seconds_per_step = 0.05;
    const ServingResult got = ServeWith(net, requests, config);
    EXPECT_EQ(got.kv_leaked_blocks, 0);
    for (size_t i = 0; i < requests.size(); ++i) {
      EXPECT_EQ(got.records[i].outcome, RequestOutcome::kFinished);
      EXPECT_EQ(got.records[i].response, want.records[i].response)
          << "policy " << static_cast<int>(admission) << " request " << i;
      EXPECT_EQ(got.records[i].log_probs, want.records[i].log_probs)
          << "policy " << static_cast<int>(admission) << " request " << i;
    }
  }
}

TEST(ServingFrontendTest, CancellationAndExpiryLeaveOthersBitwiseIdentical) {
  const PolicyNet net = TestNet();
  std::vector<ServingRequest> requests = TestRequests();

  ServingFrontendConfig baseline;
  baseline.scheduler.expire_overdue = false;
  const ServingResult want = ServeWith(net, requests, baseline);

  // Request 2 cancels after 2 streamed tokens; request 5 cancels on a
  // timer; request 7 carries a TTFT deadline it cannot meet behind a
  // single-slot queue and must be expired, not served late.
  requests[2].cancel_after_tokens = 2;
  requests[5].cancel_at = 1.0;
  requests[7].ttft_deadline = 0.4;
  ServingFrontendConfig config;
  config.scheduler.max_running = 1;  // Deep queueing: expiry has teeth.
  config.scheduler.expire_overdue = true;
  config.seconds_per_step = 0.2;
  const ServingResult got = ServeWith(net, requests, config);

  EXPECT_EQ(got.kv_leaked_blocks, 0);
  EXPECT_EQ(got.records[2].outcome, RequestOutcome::kCancelled);
  EXPECT_EQ(got.records[2].tokens, 2);
  EXPECT_EQ(got.records[5].outcome, RequestOutcome::kCancelled);
  EXPECT_EQ(got.records[7].outcome, RequestOutcome::kExpired);
  EXPECT_EQ(got.records[7].tokens, 0);  // Expiry implies no first token.
  for (size_t i = 0; i < requests.size(); ++i) {
    const RequestRecord& record = got.records[i];
    if (record.outcome == RequestOutcome::kFinished) {
      // Untouched requests are bitwise-identical to the baseline.
      EXPECT_EQ(record.response, want.records[i].response) << "request " << i;
      EXPECT_EQ(record.log_probs, want.records[i].log_probs) << "request " << i;
    } else {
      // A cut request streamed a greedy *prefix* of its baseline response.
      ASSERT_LE(record.response.size(), want.records[i].response.size());
      for (size_t k = 0; k < record.response.size(); ++k) {
        EXPECT_EQ(record.response[k], want.records[i].response[k])
            << "request " << i << " token " << k;
      }
    }
  }
  const RolloutSchedulerStats& stats = got.scheduler_stats;
  EXPECT_EQ(stats.cancelled, 2);
  EXPECT_EQ(stats.expired, 1);
}

TEST(ServingFrontendTest, StreamingCallbackDeliversTokensInOrderAndCanCancel) {
  const PolicyNet net = TestNet();
  const std::vector<ServingRequest> requests = TestRequests();
  ServingFrontendConfig config;
  config.scheduler.expire_overdue = false;
  std::map<int64_t, std::vector<int64_t>> streamed;
  double last_time = 0.0;
  const StreamCallback on_token = [&](const StreamDelta& delta) {
    EXPECT_EQ(delta.index, static_cast<int64_t>(streamed[delta.request].size()));
    EXPECT_GE(delta.time, last_time);
    last_time = std::max(last_time, delta.time);
    streamed[delta.request].push_back(delta.token);
    return delta.request != 3 || delta.index < 1;  // Hang up request 3 early.
  };
  const ServingResult got = ServeWith(net, requests, config, on_token);
  EXPECT_EQ(got.records[3].outcome, RequestOutcome::kCancelled);
  EXPECT_EQ(got.records[3].tokens, 2);  // Token 0, then the refused token 1.
  for (const RequestRecord& record : got.records) {
    EXPECT_EQ(streamed[record.id], record.response);  // Stream == record.
  }
  EXPECT_EQ(got.kv_leaked_blocks, 0);
}

TEST(ServingFrontendTest, ReportAggregatesPerTenantAndJsonlValidates) {
  const PolicyNet net = TestNet();
  const std::vector<ServingRequest> requests = TestRequests();
  ServingFrontendConfig config;
  config.scheduler.expire_overdue = false;
  const ServingResult got = ServeWith(net, requests, config);
  ASSERT_EQ(got.report.tenants.size(), 2u);
  int64_t requests_sum = 0;
  for (const TenantServingStats& tenant : got.report.tenants) {
    requests_sum += tenant.requests;
    EXPECT_EQ(tenant.requests, 4);
    EXPECT_EQ(tenant.finished, 4);
    EXPECT_GT(tenant.ttft.count, 0u);
  }
  EXPECT_EQ(requests_sum, got.report.requests);
  EXPECT_GT(got.report.makespan, 0.0);

  std::istringstream lines(RequestRecordsToJsonl(got.records));
  std::string line;
  size_t count = 0;
  while (std::getline(lines, line)) {
    std::string error;
    EXPECT_TRUE(JsonValidate(line, &error)) << error << "\n" << line;
    EXPECT_NE(line.find("\"req\":"), std::string::npos);
    EXPECT_NE(line.find("\"outcome\":"), std::string::npos);
    ++count;
  }
  EXPECT_EQ(count, requests.size());
}

// --- Sim plane: the serving claim --------------------------------------------

ArrivalTraceConfig BenchLikeTrace(TraceShape shape) {
  ArrivalTraceConfig config;
  config.shape = shape;
  config.rate = 6.0;
  config.duration = 20.0;
  config.max_requests = 160;
  config.burst_on = 2.0;
  config.burst_off = 4.0;
  config.burst_factor = 4.0;
  config.diurnal_period = 10.0;
  config.diurnal_depth = 0.9;
  TenantSpec interactive;
  interactive.tenant = 0;
  interactive.share = 0.3;
  interactive.priority = 10;
  interactive.ttft_slo = 2.0;
  interactive.prompt_min = 64;
  interactive.prompt_max = 256;
  interactive.new_tokens_min = 16;
  interactive.new_tokens_max = 64;
  TenantSpec batch;
  batch.tenant = 1;
  batch.share = 0.7;
  batch.prompt_min = 256;
  batch.prompt_max = 1024;
  batch.new_tokens_min = 64;
  batch.new_tokens_max = 256;
  config.tenants = {interactive, batch};
  return config;
}

const TenantServingStats& TenantRow(const ServingReport& report, int64_t tenant) {
  for (const TenantServingStats& row : report.tenants) {
    if (row.tenant == tenant) {
      return row;
    }
  }
  ADD_FAILURE() << "tenant " << tenant << " missing from report";
  static const TenantServingStats empty{};
  return empty;
}

TEST(ServingSimTest, SloAwareAdmissionBeatsFcfsOnHighPriorityP99Ttft) {
  const PerfModel perf(ModelSpec::Llama7B(), ClusterSpec::WithGpus(8));
  const GenParallelConfig gen{1, 2};
  const std::vector<DeviceId> devices{0, 1};
  const double kv_budget = 256.0 * 16.0 * perf.KvBytesPerTokenPerGpu(gen);

  for (const TraceShape shape : {TraceShape::kBursty, TraceShape::kDiurnal}) {
    const std::vector<ArrivalRecord> trace = GenerateArrivalTrace(BenchLikeTrace(shape), 7);
    ServingPolicyConfig fcfs;
    fcfs.expire_overdue = false;  // The plain rollout path serves late.
    const ServingSimResult base = SimulateServing(perf, gen, devices, trace, kv_budget, fcfs);
    const ServingSimResult base_again =
        SimulateServing(perf, gen, devices, trace, kv_budget, fcfs);
    EXPECT_EQ(base.sim_seconds, base_again.sim_seconds);  // Deterministic.
    EXPECT_EQ(base.report.slo_attained, base_again.report.slo_attained);
    EXPECT_EQ(base.kv_leaked_blocks, 0);

    for (const AdmissionPolicy admission :
         {AdmissionPolicy::kPriority, AdmissionPolicy::kDeadline,
          AdmissionPolicy::kWeightedFair}) {
      ServingPolicyConfig slo_aware;
      slo_aware.admission = admission;
      slo_aware.tenant_weights = {{0, 4.0}, {1, 1.0}};
      const ServingSimResult got =
          SimulateServing(perf, gen, devices, trace, kv_budget, slo_aware);
      EXPECT_EQ(got.kv_leaked_blocks, 0);
      const TenantServingStats& fcfs_hi = TenantRow(base.report, 0);
      const TenantServingStats& slo_hi = TenantRow(got.report, 0);
      // The serving claim: the SLO'd class's p99 TTFT and attainment both
      // improve on bursty and diurnal traffic.
      EXPECT_LT(slo_hi.ttft.p99, fcfs_hi.ttft.p99)
          << TraceShapeName(shape) << " policy " << static_cast<int>(admission);
      EXPECT_GT(slo_hi.slo_attained, fcfs_hi.slo_attained)
          << TraceShapeName(shape) << " policy " << static_cast<int>(admission);
    }
  }
}

}  // namespace
}  // namespace hybridflow
