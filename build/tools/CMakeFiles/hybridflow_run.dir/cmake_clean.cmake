file(REMOVE_RECURSE
  "CMakeFiles/hybridflow_run.dir/hybridflow_run.cpp.o"
  "CMakeFiles/hybridflow_run.dir/hybridflow_run.cpp.o.d"
  "hybridflow_run"
  "hybridflow_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridflow_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
