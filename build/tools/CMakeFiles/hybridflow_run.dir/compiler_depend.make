# Empty compiler generated dependencies file for hybridflow_run.
# This may be replaced when dependencies are built.
