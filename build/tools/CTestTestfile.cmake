# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_smoke "/root/repo/build/tools/hybridflow_run" "/root/repo/configs/ppo_7b_16gpu.cfg" "run.iterations=1")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;4;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_override_smoke "/root/repo/build/tools/hybridflow_run" "/root/repo/configs/ppo_7b_16gpu.cfg" "system=deepspeed-chat" "run.iterations=1")
set_tests_properties(cli_override_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
