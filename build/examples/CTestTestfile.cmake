# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "3")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compare_systems "/root/repo/build/examples/compare_systems" "7B" "16")
set_tests_properties(example_compare_systems PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_math_reasoning "/root/repo/build/examples/math_reasoning" "3")
set_tests_properties(example_math_reasoning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_safe_rlhf "/root/repo/build/examples/safe_rlhf" "3")
set_tests_properties(example_safe_rlhf PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_placement_explorer "/root/repo/build/examples/placement_explorer" "7B" "7B" "16")
set_tests_properties(example_placement_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_transition_study "/root/repo/build/examples/transition_study" "7B" "1" "8" "2")
set_tests_properties(example_transition_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_full_pipeline "/root/repo/build/examples/full_pipeline" "3")
set_tests_properties(example_full_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_protocol "/root/repo/build/examples/custom_protocol")
set_tests_properties(example_custom_protocol PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
