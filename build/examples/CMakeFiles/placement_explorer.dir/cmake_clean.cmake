file(REMOVE_RECURSE
  "CMakeFiles/placement_explorer.dir/placement_explorer.cpp.o"
  "CMakeFiles/placement_explorer.dir/placement_explorer.cpp.o.d"
  "placement_explorer"
  "placement_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
