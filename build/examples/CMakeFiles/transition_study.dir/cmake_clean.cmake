file(REMOVE_RECURSE
  "CMakeFiles/transition_study.dir/transition_study.cpp.o"
  "CMakeFiles/transition_study.dir/transition_study.cpp.o.d"
  "transition_study"
  "transition_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transition_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
