# Empty dependencies file for math_reasoning.
# This may be replaced when dependencies are built.
