file(REMOVE_RECURSE
  "CMakeFiles/math_reasoning.dir/math_reasoning.cpp.o"
  "CMakeFiles/math_reasoning.dir/math_reasoning.cpp.o.d"
  "math_reasoning"
  "math_reasoning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/math_reasoning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
