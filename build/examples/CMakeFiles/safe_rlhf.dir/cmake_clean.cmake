file(REMOVE_RECURSE
  "CMakeFiles/safe_rlhf.dir/safe_rlhf.cpp.o"
  "CMakeFiles/safe_rlhf.dir/safe_rlhf.cpp.o.d"
  "safe_rlhf"
  "safe_rlhf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_rlhf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
