# Empty dependencies file for safe_rlhf.
# This may be replaced when dependencies are built.
