
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/perf_model.cc" "src/perf/CMakeFiles/hf_perf.dir/perf_model.cc.o" "gcc" "src/perf/CMakeFiles/hf_perf.dir/perf_model.cc.o.d"
  "/root/repo/src/perf/pipeline_schedule.cc" "src/perf/CMakeFiles/hf_perf.dir/pipeline_schedule.cc.o" "gcc" "src/perf/CMakeFiles/hf_perf.dir/pipeline_schedule.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kvcache/CMakeFiles/hf_kvcache.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/hf_model.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/hf_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
