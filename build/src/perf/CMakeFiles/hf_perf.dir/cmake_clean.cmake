file(REMOVE_RECURSE
  "CMakeFiles/hf_perf.dir/perf_model.cc.o"
  "CMakeFiles/hf_perf.dir/perf_model.cc.o.d"
  "CMakeFiles/hf_perf.dir/pipeline_schedule.cc.o"
  "CMakeFiles/hf_perf.dir/pipeline_schedule.cc.o.d"
  "libhf_perf.a"
  "libhf_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
