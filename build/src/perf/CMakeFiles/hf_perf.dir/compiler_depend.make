# Empty compiler generated dependencies file for hf_perf.
# This may be replaced when dependencies are built.
