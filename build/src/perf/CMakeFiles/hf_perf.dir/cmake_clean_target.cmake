file(REMOVE_RECURSE
  "libhf_perf.a"
)
