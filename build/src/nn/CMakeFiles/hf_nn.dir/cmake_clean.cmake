file(REMOVE_RECURSE
  "CMakeFiles/hf_nn.dir/adam.cc.o"
  "CMakeFiles/hf_nn.dir/adam.cc.o.d"
  "CMakeFiles/hf_nn.dir/policy_net.cc.o"
  "CMakeFiles/hf_nn.dir/policy_net.cc.o.d"
  "libhf_nn.a"
  "libhf_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
