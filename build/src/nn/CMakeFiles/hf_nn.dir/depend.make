# Empty dependencies file for hf_nn.
# This may be replaced when dependencies are built.
