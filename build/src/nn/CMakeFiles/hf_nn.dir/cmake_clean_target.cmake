file(REMOVE_RECURSE
  "libhf_nn.a"
)
