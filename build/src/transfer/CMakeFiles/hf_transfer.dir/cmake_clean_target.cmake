file(REMOVE_RECURSE
  "libhf_transfer.a"
)
