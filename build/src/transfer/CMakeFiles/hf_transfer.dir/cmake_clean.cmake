file(REMOVE_RECURSE
  "CMakeFiles/hf_transfer.dir/protocol.cc.o"
  "CMakeFiles/hf_transfer.dir/protocol.cc.o.d"
  "libhf_transfer.a"
  "libhf_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
