
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transfer/protocol.cc" "src/transfer/CMakeFiles/hf_transfer.dir/protocol.cc.o" "gcc" "src/transfer/CMakeFiles/hf_transfer.dir/protocol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/hf_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/hf_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
