# Empty dependencies file for hf_transfer.
# This may be replaced when dependencies are built.
