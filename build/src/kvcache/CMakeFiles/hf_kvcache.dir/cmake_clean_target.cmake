file(REMOVE_RECURSE
  "libhf_kvcache.a"
)
