file(REMOVE_RECURSE
  "CMakeFiles/hf_kvcache.dir/block_manager.cc.o"
  "CMakeFiles/hf_kvcache.dir/block_manager.cc.o.d"
  "libhf_kvcache.a"
  "libhf_kvcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_kvcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
