# Empty compiler generated dependencies file for hf_kvcache.
# This may be replaced when dependencies are built.
