file(REMOVE_RECURSE
  "libhf_sim.a"
)
