file(REMOVE_RECURSE
  "CMakeFiles/hf_sim.dir/collective.cc.o"
  "CMakeFiles/hf_sim.dir/collective.cc.o.d"
  "CMakeFiles/hf_sim.dir/des_executor.cc.o"
  "CMakeFiles/hf_sim.dir/des_executor.cc.o.d"
  "CMakeFiles/hf_sim.dir/event_queue.cc.o"
  "CMakeFiles/hf_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/hf_sim.dir/timeline.cc.o"
  "CMakeFiles/hf_sim.dir/timeline.cc.o.d"
  "CMakeFiles/hf_sim.dir/topology.cc.o"
  "CMakeFiles/hf_sim.dir/topology.cc.o.d"
  "CMakeFiles/hf_sim.dir/trace_export.cc.o"
  "CMakeFiles/hf_sim.dir/trace_export.cc.o.d"
  "libhf_sim.a"
  "libhf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
