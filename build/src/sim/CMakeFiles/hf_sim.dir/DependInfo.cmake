
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/collective.cc" "src/sim/CMakeFiles/hf_sim.dir/collective.cc.o" "gcc" "src/sim/CMakeFiles/hf_sim.dir/collective.cc.o.d"
  "/root/repo/src/sim/des_executor.cc" "src/sim/CMakeFiles/hf_sim.dir/des_executor.cc.o" "gcc" "src/sim/CMakeFiles/hf_sim.dir/des_executor.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/sim/CMakeFiles/hf_sim.dir/event_queue.cc.o" "gcc" "src/sim/CMakeFiles/hf_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/sim/timeline.cc" "src/sim/CMakeFiles/hf_sim.dir/timeline.cc.o" "gcc" "src/sim/CMakeFiles/hf_sim.dir/timeline.cc.o.d"
  "/root/repo/src/sim/topology.cc" "src/sim/CMakeFiles/hf_sim.dir/topology.cc.o" "gcc" "src/sim/CMakeFiles/hf_sim.dir/topology.cc.o.d"
  "/root/repo/src/sim/trace_export.cc" "src/sim/CMakeFiles/hf_sim.dir/trace_export.cc.o" "gcc" "src/sim/CMakeFiles/hf_sim.dir/trace_export.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
