file(REMOVE_RECURSE
  "libhf_baselines.a"
)
