# Empty dependencies file for hf_baselines.
# This may be replaced when dependencies are built.
