file(REMOVE_RECURSE
  "CMakeFiles/hf_baselines.dir/system_builder.cc.o"
  "CMakeFiles/hf_baselines.dir/system_builder.cc.o.d"
  "libhf_baselines.a"
  "libhf_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
