file(REMOVE_RECURSE
  "CMakeFiles/hf_mapping.dir/device_mapper.cc.o"
  "CMakeFiles/hf_mapping.dir/device_mapper.cc.o.d"
  "libhf_mapping.a"
  "libhf_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
