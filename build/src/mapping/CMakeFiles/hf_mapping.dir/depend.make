# Empty dependencies file for hf_mapping.
# This may be replaced when dependencies are built.
