file(REMOVE_RECURSE
  "libhf_mapping.a"
)
