file(REMOVE_RECURSE
  "libhf_ckpt.a"
)
