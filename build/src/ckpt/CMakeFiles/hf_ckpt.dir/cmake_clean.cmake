file(REMOVE_RECURSE
  "CMakeFiles/hf_ckpt.dir/checkpoint.cc.o"
  "CMakeFiles/hf_ckpt.dir/checkpoint.cc.o.d"
  "CMakeFiles/hf_ckpt.dir/trainer.cc.o"
  "CMakeFiles/hf_ckpt.dir/trainer.cc.o.d"
  "libhf_ckpt.a"
  "libhf_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
