# Empty compiler generated dependencies file for hf_ckpt.
# This may be replaced when dependencies are built.
