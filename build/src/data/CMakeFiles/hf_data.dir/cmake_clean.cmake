file(REMOVE_RECURSE
  "CMakeFiles/hf_data.dir/alignment_task.cc.o"
  "CMakeFiles/hf_data.dir/alignment_task.cc.o.d"
  "CMakeFiles/hf_data.dir/data_batch.cc.o"
  "CMakeFiles/hf_data.dir/data_batch.cc.o.d"
  "libhf_data.a"
  "libhf_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
