file(REMOVE_RECURSE
  "libhf_data.a"
)
