
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/alignment_task.cc" "src/data/CMakeFiles/hf_data.dir/alignment_task.cc.o" "gcc" "src/data/CMakeFiles/hf_data.dir/alignment_task.cc.o.d"
  "/root/repo/src/data/data_batch.cc" "src/data/CMakeFiles/hf_data.dir/data_batch.cc.o" "gcc" "src/data/CMakeFiles/hf_data.dir/data_batch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
