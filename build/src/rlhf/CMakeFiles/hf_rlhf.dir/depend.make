# Empty dependencies file for hf_rlhf.
# This may be replaced when dependencies are built.
