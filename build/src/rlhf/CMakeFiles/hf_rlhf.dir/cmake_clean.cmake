file(REMOVE_RECURSE
  "CMakeFiles/hf_rlhf.dir/pretraining.cc.o"
  "CMakeFiles/hf_rlhf.dir/pretraining.cc.o.d"
  "CMakeFiles/hf_rlhf.dir/rlhf_program.cc.o"
  "CMakeFiles/hf_rlhf.dir/rlhf_program.cc.o.d"
  "libhf_rlhf.a"
  "libhf_rlhf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_rlhf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
