file(REMOVE_RECURSE
  "libhf_rlhf.a"
)
