file(REMOVE_RECURSE
  "CMakeFiles/hf_rlhf_core.dir/advantage.cc.o"
  "CMakeFiles/hf_rlhf_core.dir/advantage.cc.o.d"
  "CMakeFiles/hf_rlhf_core.dir/kl_controller.cc.o"
  "CMakeFiles/hf_rlhf_core.dir/kl_controller.cc.o.d"
  "CMakeFiles/hf_rlhf_core.dir/losses.cc.o"
  "CMakeFiles/hf_rlhf_core.dir/losses.cc.o.d"
  "libhf_rlhf_core.a"
  "libhf_rlhf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_rlhf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
