
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rlhf/advantage.cc" "src/rlhf/CMakeFiles/hf_rlhf_core.dir/advantage.cc.o" "gcc" "src/rlhf/CMakeFiles/hf_rlhf_core.dir/advantage.cc.o.d"
  "/root/repo/src/rlhf/kl_controller.cc" "src/rlhf/CMakeFiles/hf_rlhf_core.dir/kl_controller.cc.o" "gcc" "src/rlhf/CMakeFiles/hf_rlhf_core.dir/kl_controller.cc.o.d"
  "/root/repo/src/rlhf/losses.cc" "src/rlhf/CMakeFiles/hf_rlhf_core.dir/losses.cc.o" "gcc" "src/rlhf/CMakeFiles/hf_rlhf_core.dir/losses.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hf_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
