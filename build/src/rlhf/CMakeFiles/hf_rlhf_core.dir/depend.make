# Empty dependencies file for hf_rlhf_core.
# This may be replaced when dependencies are built.
