file(REMOVE_RECURSE
  "libhf_rlhf_core.a"
)
