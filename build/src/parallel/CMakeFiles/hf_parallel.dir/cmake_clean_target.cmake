file(REMOVE_RECURSE
  "libhf_parallel.a"
)
