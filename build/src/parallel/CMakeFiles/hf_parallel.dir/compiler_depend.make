# Empty compiler generated dependencies file for hf_parallel.
# This may be replaced when dependencies are built.
