
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/parallel_config.cc" "src/parallel/CMakeFiles/hf_parallel.dir/parallel_config.cc.o" "gcc" "src/parallel/CMakeFiles/hf_parallel.dir/parallel_config.cc.o.d"
  "/root/repo/src/parallel/process_groups.cc" "src/parallel/CMakeFiles/hf_parallel.dir/process_groups.cc.o" "gcc" "src/parallel/CMakeFiles/hf_parallel.dir/process_groups.cc.o.d"
  "/root/repo/src/parallel/shard_range.cc" "src/parallel/CMakeFiles/hf_parallel.dir/shard_range.cc.o" "gcc" "src/parallel/CMakeFiles/hf_parallel.dir/shard_range.cc.o.d"
  "/root/repo/src/parallel/zero_config.cc" "src/parallel/CMakeFiles/hf_parallel.dir/zero_config.cc.o" "gcc" "src/parallel/CMakeFiles/hf_parallel.dir/zero_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/hf_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
