file(REMOVE_RECURSE
  "CMakeFiles/hf_parallel.dir/parallel_config.cc.o"
  "CMakeFiles/hf_parallel.dir/parallel_config.cc.o.d"
  "CMakeFiles/hf_parallel.dir/process_groups.cc.o"
  "CMakeFiles/hf_parallel.dir/process_groups.cc.o.d"
  "CMakeFiles/hf_parallel.dir/shard_range.cc.o"
  "CMakeFiles/hf_parallel.dir/shard_range.cc.o.d"
  "CMakeFiles/hf_parallel.dir/zero_config.cc.o"
  "CMakeFiles/hf_parallel.dir/zero_config.cc.o.d"
  "libhf_parallel.a"
  "libhf_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
