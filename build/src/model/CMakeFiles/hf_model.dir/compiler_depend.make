# Empty compiler generated dependencies file for hf_model.
# This may be replaced when dependencies are built.
