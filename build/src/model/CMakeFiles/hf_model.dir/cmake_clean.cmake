file(REMOVE_RECURSE
  "CMakeFiles/hf_model.dir/model_spec.cc.o"
  "CMakeFiles/hf_model.dir/model_spec.cc.o.d"
  "libhf_model.a"
  "libhf_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
