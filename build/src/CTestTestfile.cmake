# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("model")
subdirs("parallel")
subdirs("perf")
subdirs("tensor")
subdirs("nn")
subdirs("data")
subdirs("transfer")
subdirs("controller")
subdirs("workers")
subdirs("hybridengine")
subdirs("rlhf")
subdirs("ckpt")
subdirs("kvcache")
subdirs("mapping")
subdirs("baselines")
