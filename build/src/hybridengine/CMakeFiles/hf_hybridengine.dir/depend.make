# Empty dependencies file for hf_hybridengine.
# This may be replaced when dependencies are built.
