file(REMOVE_RECURSE
  "libhf_hybridengine.a"
)
