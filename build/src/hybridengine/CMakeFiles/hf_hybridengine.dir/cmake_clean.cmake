file(REMOVE_RECURSE
  "CMakeFiles/hf_hybridengine.dir/hybrid_engine.cc.o"
  "CMakeFiles/hf_hybridengine.dir/hybrid_engine.cc.o.d"
  "libhf_hybridengine.a"
  "libhf_hybridengine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_hybridengine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
