
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hybridengine/hybrid_engine.cc" "src/hybridengine/CMakeFiles/hf_hybridengine.dir/hybrid_engine.cc.o" "gcc" "src/hybridengine/CMakeFiles/hf_hybridengine.dir/hybrid_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/hf_model.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/hf_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hf_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
