# Empty compiler generated dependencies file for hf_workers.
# This may be replaced when dependencies are built.
