file(REMOVE_RECURSE
  "libhf_workers.a"
)
