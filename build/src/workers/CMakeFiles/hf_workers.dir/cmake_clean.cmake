file(REMOVE_RECURSE
  "CMakeFiles/hf_workers.dir/model_workers.cc.o"
  "CMakeFiles/hf_workers.dir/model_workers.cc.o.d"
  "CMakeFiles/hf_workers.dir/token_context.cc.o"
  "CMakeFiles/hf_workers.dir/token_context.cc.o.d"
  "CMakeFiles/hf_workers.dir/worker_group.cc.o"
  "CMakeFiles/hf_workers.dir/worker_group.cc.o.d"
  "libhf_workers.a"
  "libhf_workers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
