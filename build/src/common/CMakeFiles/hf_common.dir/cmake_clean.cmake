file(REMOVE_RECURSE
  "CMakeFiles/hf_common.dir/config.cc.o"
  "CMakeFiles/hf_common.dir/config.cc.o.d"
  "CMakeFiles/hf_common.dir/logging.cc.o"
  "CMakeFiles/hf_common.dir/logging.cc.o.d"
  "CMakeFiles/hf_common.dir/rng.cc.o"
  "CMakeFiles/hf_common.dir/rng.cc.o.d"
  "CMakeFiles/hf_common.dir/strings.cc.o"
  "CMakeFiles/hf_common.dir/strings.cc.o.d"
  "CMakeFiles/hf_common.dir/thread_pool.cc.o"
  "CMakeFiles/hf_common.dir/thread_pool.cc.o.d"
  "libhf_common.a"
  "libhf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
