# Empty compiler generated dependencies file for hf_common.
# This may be replaced when dependencies are built.
