
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/controller/controller.cc" "src/controller/CMakeFiles/hf_controller.dir/controller.cc.o" "gcc" "src/controller/CMakeFiles/hf_controller.dir/controller.cc.o.d"
  "/root/repo/src/controller/resource_pool.cc" "src/controller/CMakeFiles/hf_controller.dir/resource_pool.cc.o" "gcc" "src/controller/CMakeFiles/hf_controller.dir/resource_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hf_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
