file(REMOVE_RECURSE
  "CMakeFiles/hf_controller.dir/controller.cc.o"
  "CMakeFiles/hf_controller.dir/controller.cc.o.d"
  "CMakeFiles/hf_controller.dir/resource_pool.cc.o"
  "CMakeFiles/hf_controller.dir/resource_pool.cc.o.d"
  "libhf_controller.a"
  "libhf_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
