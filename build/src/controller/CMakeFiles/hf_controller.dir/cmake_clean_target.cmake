file(REMOVE_RECURSE
  "libhf_controller.a"
)
