# Empty compiler generated dependencies file for hf_controller.
# This may be replaced when dependencies are built.
