file(REMOVE_RECURSE
  "CMakeFiles/hf_tensor.dir/ops.cc.o"
  "CMakeFiles/hf_tensor.dir/ops.cc.o.d"
  "CMakeFiles/hf_tensor.dir/tensor.cc.o"
  "CMakeFiles/hf_tensor.dir/tensor.cc.o.d"
  "libhf_tensor.a"
  "libhf_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
