# Empty dependencies file for hf_tensor.
# This may be replaced when dependencies are built.
