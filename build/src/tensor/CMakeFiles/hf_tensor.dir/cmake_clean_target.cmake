file(REMOVE_RECURSE
  "libhf_tensor.a"
)
