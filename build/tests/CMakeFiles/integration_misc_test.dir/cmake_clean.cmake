file(REMOVE_RECURSE
  "CMakeFiles/integration_misc_test.dir/integration_misc_test.cc.o"
  "CMakeFiles/integration_misc_test.dir/integration_misc_test.cc.o.d"
  "integration_misc_test"
  "integration_misc_test.pdb"
  "integration_misc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
