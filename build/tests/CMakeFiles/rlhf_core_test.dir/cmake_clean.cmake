file(REMOVE_RECURSE
  "CMakeFiles/rlhf_core_test.dir/rlhf_core_test.cc.o"
  "CMakeFiles/rlhf_core_test.dir/rlhf_core_test.cc.o.d"
  "rlhf_core_test"
  "rlhf_core_test.pdb"
  "rlhf_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlhf_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
