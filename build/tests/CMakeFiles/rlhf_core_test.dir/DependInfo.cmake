
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rlhf_core_test.cc" "tests/CMakeFiles/rlhf_core_test.dir/rlhf_core_test.cc.o" "gcc" "tests/CMakeFiles/rlhf_core_test.dir/rlhf_core_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rlhf/CMakeFiles/hf_rlhf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
