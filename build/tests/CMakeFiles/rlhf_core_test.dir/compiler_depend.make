# Empty compiler generated dependencies file for rlhf_core_test.
# This may be replaced when dependencies are built.
