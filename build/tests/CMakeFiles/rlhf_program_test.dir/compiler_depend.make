# Empty compiler generated dependencies file for rlhf_program_test.
# This may be replaced when dependencies are built.
