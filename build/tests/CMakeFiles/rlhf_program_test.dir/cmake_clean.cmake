file(REMOVE_RECURSE
  "CMakeFiles/rlhf_program_test.dir/rlhf_program_test.cc.o"
  "CMakeFiles/rlhf_program_test.dir/rlhf_program_test.cc.o.d"
  "rlhf_program_test"
  "rlhf_program_test.pdb"
  "rlhf_program_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlhf_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
