file(REMOVE_RECURSE
  "CMakeFiles/variable_length_test.dir/variable_length_test.cc.o"
  "CMakeFiles/variable_length_test.dir/variable_length_test.cc.o.d"
  "variable_length_test"
  "variable_length_test.pdb"
  "variable_length_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variable_length_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
