# Empty compiler generated dependencies file for variable_length_test.
# This may be replaced when dependencies are built.
