# Empty compiler generated dependencies file for workers_test.
# This may be replaced when dependencies are built.
