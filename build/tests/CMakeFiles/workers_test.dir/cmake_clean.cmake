file(REMOVE_RECURSE
  "CMakeFiles/workers_test.dir/workers_test.cc.o"
  "CMakeFiles/workers_test.dir/workers_test.cc.o.d"
  "workers_test"
  "workers_test.pdb"
  "workers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
