# Empty dependencies file for sim_des_test.
# This may be replaced when dependencies are built.
