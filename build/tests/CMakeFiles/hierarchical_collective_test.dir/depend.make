# Empty dependencies file for hierarchical_collective_test.
# This may be replaced when dependencies are built.
