file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_collective_test.dir/hierarchical_collective_test.cc.o"
  "CMakeFiles/hierarchical_collective_test.dir/hierarchical_collective_test.cc.o.d"
  "hierarchical_collective_test"
  "hierarchical_collective_test.pdb"
  "hierarchical_collective_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_collective_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
