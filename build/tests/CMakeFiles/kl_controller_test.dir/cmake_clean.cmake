file(REMOVE_RECURSE
  "CMakeFiles/kl_controller_test.dir/kl_controller_test.cc.o"
  "CMakeFiles/kl_controller_test.dir/kl_controller_test.cc.o.d"
  "kl_controller_test"
  "kl_controller_test.pdb"
  "kl_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kl_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
