# Empty compiler generated dependencies file for kl_controller_test.
# This may be replaced when dependencies are built.
