# Empty compiler generated dependencies file for pretraining_test.
# This may be replaced when dependencies are built.
