file(REMOVE_RECURSE
  "CMakeFiles/pretraining_test.dir/pretraining_test.cc.o"
  "CMakeFiles/pretraining_test.dir/pretraining_test.cc.o.d"
  "pretraining_test"
  "pretraining_test.pdb"
  "pretraining_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pretraining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
