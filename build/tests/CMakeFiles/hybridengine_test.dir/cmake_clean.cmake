file(REMOVE_RECURSE
  "CMakeFiles/hybridengine_test.dir/hybridengine_test.cc.o"
  "CMakeFiles/hybridengine_test.dir/hybridengine_test.cc.o.d"
  "hybridengine_test"
  "hybridengine_test.pdb"
  "hybridengine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybridengine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
