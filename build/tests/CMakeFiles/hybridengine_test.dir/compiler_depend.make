# Empty compiler generated dependencies file for hybridengine_test.
# This may be replaced when dependencies are built.
