# Empty compiler generated dependencies file for bench_fig10_remax_throughput.
# This may be replaced when dependencies are built.
