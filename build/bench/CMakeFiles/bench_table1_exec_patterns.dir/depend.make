# Empty dependencies file for bench_table1_exec_patterns.
# This may be replaced when dependencies are built.
