file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_large_critic.dir/bench_fig13_large_critic.cc.o"
  "CMakeFiles/bench_fig13_large_critic.dir/bench_fig13_large_critic.cc.o.d"
  "bench_fig13_large_critic"
  "bench_fig13_large_critic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_large_critic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
