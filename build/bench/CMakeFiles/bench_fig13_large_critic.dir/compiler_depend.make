# Empty compiler generated dependencies file for bench_fig13_large_critic.
# This may be replaced when dependencies are built.
