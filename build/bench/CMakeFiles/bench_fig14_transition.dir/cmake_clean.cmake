file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_transition.dir/bench_fig14_transition.cc.o"
  "CMakeFiles/bench_fig14_transition.dir/bench_fig14_transition.cc.o.d"
  "bench_fig14_transition"
  "bench_fig14_transition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_transition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
