# Empty dependencies file for bench_fig14_transition.
# This may be replaced when dependencies are built.
