# Empty dependencies file for bench_fig15_gen_parallel.
# This may be replaced when dependencies are built.
