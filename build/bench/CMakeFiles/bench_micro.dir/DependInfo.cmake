
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro.cc" "bench/CMakeFiles/bench_micro.dir/bench_micro.cc.o" "gcc" "bench/CMakeFiles/bench_micro.dir/bench_micro.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/hf_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/hf_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/rlhf/CMakeFiles/hf_rlhf.dir/DependInfo.cmake"
  "/root/repo/build/src/workers/CMakeFiles/hf_workers.dir/DependInfo.cmake"
  "/root/repo/build/src/hybridengine/CMakeFiles/hf_hybridengine.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/hf_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/kvcache/CMakeFiles/hf_kvcache.dir/DependInfo.cmake"
  "/root/repo/build/src/rlhf/CMakeFiles/hf_rlhf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/hf_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hf_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/transfer/CMakeFiles/hf_transfer.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/hf_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/hf_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
