file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_safe_rlhf_throughput.dir/bench_fig11_safe_rlhf_throughput.cc.o"
  "CMakeFiles/bench_fig11_safe_rlhf_throughput.dir/bench_fig11_safe_rlhf_throughput.cc.o.d"
  "bench_fig11_safe_rlhf_throughput"
  "bench_fig11_safe_rlhf_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_safe_rlhf_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
